// Package audit implements the decision-provenance plane: it answers "why did
// the governor pick level L for this block" with bounded, deterministic state
// fed by the offline decision pipeline (core.Framework.Analyze), the online
// plan governors (PowerLens/MultiPlan), and the Guard fallback wrapper.
//
// The recorder keeps two classes of state:
//
//   - Aggregates — per-kind record counts, plan-application cells keyed
//     (graph digest, block, layer, level), guard event counts keyed
//     (event, reason), and per-model-digest calibration statistics (decision
//     counts, probe agreement counts, margin/regret sketches, reservoir
//     exemplars). All of it is integral or mergeable sketch state, so Merge
//     is order-robust the same way the attribution ledger's cells are: the
//     same multiset of events yields the same aggregates no matter how the
//     events were partitioned across nodes or dispatch shards.
//   - Record rings — a bounded per-track ring of recent Records (drop-oldest)
//     for human inspection. Ring content is deterministic for a fixed run but
//     follows job placement, which the sharded dispatcher varies with the
//     shard count; fleets wanting exports byte-identical across shard counts
//     run with RingSize < 0 (aggregate-only auditing).
//
// Design constraints, inherited from the obs layer: a nil *Recorder accepts
// every call and does nothing (one pointer check when auditing is off);
// snapshots walk every map in sorted key order so equal recorders export
// equal bytes, both as indented JSON and as the byte-stable "PLAU" binary
// encoding (encode.go).
package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"powerlens/internal/obs"
	"powerlens/internal/obs/sketch"
)

// Config parameterizes a Recorder. Zero fields take defaults; negative
// RingSize/Exemplars/ProbeEvery disable the respective feature.
type Config struct {
	// RingSize bounds each per-track record ring. 0 → 256; < 0 disables
	// rings entirely (aggregate-only auditing, shard-count-invariant).
	RingSize int
	// Exemplars bounds the per-model reservoir of sampled feature vectors.
	// 0 → 4; < 0 disables exemplar sampling.
	Exemplars int
	// ProbeEvery is the calibration-probe cadence: every Nth decision per
	// model re-runs the oracle sweep. 0 → 8; < 0 disables probing.
	ProbeEvery int
	// Seed drives the deterministic reservoir replacement. 0 → 1.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.RingSize == 0 {
		c.RingSize = 256
	}
	if c.Exemplars == 0 {
		c.Exemplars = 4
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Kind classifies an audit record.
type Kind uint8

const (
	// KindDecision is one decision-model inference: a per-block level choice
	// made by core.Framework.Analyze.
	KindDecision Kind = 1
	// KindApply is one plan application at an instrumentation point by a
	// PowerLens/MultiPlan governor.
	KindApply Kind = 2
	// KindGuard is a Guard lifecycle event (strike, failover, recovery).
	KindGuard Kind = 3
	// KindProbe is one calibration probe: the oracle sweep re-run on a
	// sampled decision.
	KindProbe Kind = 4

	numKinds = 5 // array size for per-kind counters (index 0 unused)
)

// String returns the kind's snapshot label.
func (k Kind) String() string {
	switch k {
	case KindDecision:
		return "decision"
	case KindApply:
		return "apply"
	case KindGuard:
		return "guard"
	case KindProbe:
		return "probe"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one audit event. Field use varies by kind:
//
//   - decision: Level is the chosen level, Runner the runner-up, Margin the
//     softmax probability gap between them, Feat the feature-vector hash.
//   - apply: Level is the plan's preset level at instrumentation point
//     (Block, Layer).
//   - guard: Source is the event (strike/failover/recovery), Reason the
//     fallback reason string, Level the last good level.
//   - probe: Level is the chosen level, Runner the oracle's optimal level,
//     Margin the relative energy regret (chosen/optimal - 1).
type Record struct {
	Seq    uint64
	At     time.Duration
	Kind   Kind
	Source string
	Model  string
	Digest uint64
	Block  int32
	Layer  int32
	Level  int32
	Runner int32
	Margin float64
	Feat   uint64
	Reason string
}

// applyKey addresses one plan-application aggregate cell.
type applyKey struct {
	Digest uint64
	Block  int32
	Layer  int32
	Level  int32
}

func (k applyKey) less(o applyKey) bool {
	if k.Digest != o.Digest {
		return k.Digest < o.Digest
	}
	if k.Block != o.Block {
		return k.Block < o.Block
	}
	if k.Layer != o.Layer {
		return k.Layer < o.Layer
	}
	return k.Level < o.Level
}

// applyCell is the aggregate behind one applyKey.
type applyCell struct {
	name  string
	count uint64
}

// guardKey addresses one guard-event aggregate.
type guardKey struct {
	Event  string
	Reason string
}

func (k guardKey) less(o guardKey) bool {
	if k.Event != o.Event {
		return k.Event < o.Event
	}
	return k.Reason < o.Reason
}

// Exemplar is one reservoir-sampled decision input.
type Exemplar struct {
	Block int32
	Level int32
	Vec   []float64
}

// modelAudit is the per-model-digest calibration state.
type modelAudit struct {
	name      string
	decisions uint64
	probes    uint64
	agrees    uint64
	seen      uint64 // decisions offered to the exemplar reservoir
	margin    *sketch.Sketch
	regret    *sketch.Sketch
	exemplars []Exemplar
}

// ring is a bounded drop-oldest record buffer.
type ring struct {
	recs  []Record
	start int
	n     int
}

func (r *ring) push(rec Record, cap_ int) (dropped bool) {
	if cap_ <= 0 {
		return false
	}
	if r.recs == nil {
		r.recs = make([]Record, cap_)
	}
	if r.n < len(r.recs) {
		r.recs[(r.start+r.n)%len(r.recs)] = rec
		r.n++
		return false
	}
	r.recs[r.start] = rec
	r.start = (r.start + 1) % len(r.recs)
	return true
}

// ordered returns the ring's records oldest → newest.
func (r *ring) ordered() []Record {
	out := make([]Record, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.recs[(r.start+i)%len(r.recs)])
	}
	return out
}

// Recorder accumulates audit state. Safe for concurrent use; the intended
// high-throughput path is one private recorder per node merged in node order
// at the end, with the mutex only there to make stray concurrent use safe.
type Recorder struct {
	mu      sync.Mutex
	cfg     Config
	clock   func() time.Duration
	seq     uint64
	dropped uint64
	kinds   [numKinds]uint64
	tracks  map[int]*ring
	applies map[applyKey]*applyCell
	guards  map[guardKey]uint64
	models  map[uint64]*modelAudit
	drift   *Drift
}

// New returns an empty recorder with cfg (zero fields defaulted).
func New(cfg Config) *Recorder {
	return &Recorder{
		cfg:     cfg.withDefaults(),
		tracks:  map[int]*ring{},
		applies: map[applyKey]*applyCell{},
		guards:  map[guardKey]uint64{},
		models:  map[uint64]*modelAudit{},
	}
}

// ConfigView returns the effective (defaulted) configuration, so fleet
// owners can construct per-node recorders with identical settings.
func (r *Recorder) ConfigView() Config {
	if r == nil {
		return Config{}
	}
	return r.cfg
}

// SetClock installs the timestamp source for ring records (the executor
// installs its simulated clock at reset). A nil clock stamps zero.
func (r *Recorder) SetClock(clock func() time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// AttachDrift wires a drift monitor into the recorder so /drift and ExportTo
// can surface divergence state alongside decision provenance.
func (r *Recorder) AttachDrift(d *Drift) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.drift = d
	r.mu.Unlock()
}

// DriftMonitor returns the attached drift monitor, or nil.
func (r *Recorder) DriftMonitor() *Drift {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drift
}

// splitmix64 is the deterministic mixer behind reservoir replacement: a pure
// function of (seed, counter), so sampling never consults a shared RNG stream
// and merges stay reproducible.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashVector is the FNV-1a/64 hash of a feature vector's IEEE-754 bits, used
// as the compact input fingerprint in decision records.
func HashVector(vec []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range vec {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= bits >> s & 0xff
			h *= prime64
		}
	}
	return h
}

func (r *Recorder) model(digest uint64, name string) *modelAudit {
	m, ok := r.models[digest]
	if !ok {
		m = &modelAudit{name: name, margin: sketch.New(), regret: sketch.New()}
		r.models[digest] = m
	}
	return m
}

func (r *Recorder) emit(track int, rec Record) {
	r.kinds[rec.Kind]++
	if r.cfg.RingSize <= 0 {
		return
	}
	rec.Seq = r.seq
	r.seq++
	if r.clock != nil {
		rec.At = r.clock()
	}
	rg, ok := r.tracks[track]
	if !ok {
		rg = &ring{}
		r.tracks[track] = rg
	}
	if rg.push(rec, r.cfg.RingSize) {
		r.dropped++
	}
}

// RecordDecision records one decision-model inference for block `block` of
// the model with the given graph digest: the chosen level, the runner-up and
// the softmax margin between them, plus the raw global-feature vector the
// decision saw (hashed into the record; reservoir-sampled as an exemplar).
// The return value reports whether this decision is selected for a
// calibration probe (every cfg.ProbeEvery-th decision per model).
func (r *Recorder) RecordDecision(track int, model string, digest uint64, block, level, runner int, margin float64, vec []float64) (probe bool) {
	if r == nil {
		return false
	}
	r.mu.Lock()
	m := r.model(digest, model)
	m.decisions++
	m.margin.Observe(margin)
	probe = r.cfg.ProbeEvery > 0 && (m.decisions-1)%uint64(r.cfg.ProbeEvery) == 0
	if r.cfg.Exemplars > 0 {
		m.seen++
		if len(m.exemplars) < r.cfg.Exemplars {
			m.exemplars = append(m.exemplars, Exemplar{
				Block: int32(block), Level: int32(level), Vec: append([]float64(nil), vec...),
			})
		} else if j := splitmix64(r.cfg.Seed^m.seen) % m.seen; j < uint64(r.cfg.Exemplars) {
			m.exemplars[j] = Exemplar{
				Block: int32(block), Level: int32(level), Vec: append([]float64(nil), vec...),
			}
		}
	}
	r.emit(track, Record{
		Kind: KindDecision, Source: "decide", Model: model, Digest: digest,
		Block: int32(block), Layer: -1, Level: int32(level), Runner: int32(runner),
		Margin: margin, Feat: HashVector(vec),
	})
	r.mu.Unlock()
	return probe
}

// RecordProbe records one calibration probe: the oracle sweep's optimal level
// for the block against the level the decision model chose, with the relative
// energy regret (chosenEnergy/optimalEnergy - 1, 0 when they agree).
func (r *Recorder) RecordProbe(track int, model string, digest uint64, block, chosen, oracle int, regret float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	m := r.model(digest, model)
	m.probes++
	if chosen == oracle {
		m.agrees++
	}
	m.regret.Observe(regret)
	r.emit(track, Record{
		Kind: KindProbe, Source: "probe", Model: model, Digest: digest,
		Block: int32(block), Layer: -1, Level: int32(chosen), Runner: int32(oracle),
		Margin: regret,
	})
	r.mu.Unlock()
}

// RecordApply records one plan application: governor `source` preset `level`
// at instrumentation point (block, layer) of the digested graph. Content is a
// pure function of (plan, graph), so the aggregate cells are invariant to how
// passes were placed across nodes or shards.
func (r *Recorder) RecordApply(track int, source, model string, digest uint64, block, layer, level int) {
	if r == nil {
		return
	}
	k := applyKey{Digest: digest, Block: int32(block), Layer: int32(layer), Level: int32(level)}
	r.mu.Lock()
	c, ok := r.applies[k]
	if !ok {
		c = &applyCell{name: model}
		r.applies[k] = c
	}
	c.count++
	r.emit(track, Record{
		Kind: KindApply, Source: source, Model: model, Digest: digest,
		Block: int32(block), Layer: int32(layer), Level: int32(level), Runner: -1,
	})
	r.mu.Unlock()
}

// RecordGuard records one Guard lifecycle event ("strike", "failover",
// "recovery") with the exact fallback reason and the inner controller name.
func (r *Recorder) RecordGuard(track int, event, inner string, level int, reason string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.guards[guardKey{Event: event, Reason: reason}]++
	r.emit(track, Record{
		Kind: KindGuard, Source: event, Model: inner,
		Block: -1, Layer: -1, Level: int32(level), Runner: -1, Reason: reason,
	})
	r.mu.Unlock()
}

// Merge folds src into r: aggregates fold by key (order-robust, like the
// ledger), ring records append into r's rings in src track order with fresh
// sequence numbers. Fleets merge per-node recorders in node order, which
// makes merged ring content deterministic too. src is left untouched; the
// two locks are never held at once.
func (r *Recorder) Merge(src *Recorder) {
	if r == nil || src == nil {
		return
	}
	type trackRecs struct {
		track int
		recs  []Record
	}
	type kapply struct {
		k applyKey
		c applyCell
	}
	type kguard struct {
		k guardKey
		n uint64
	}
	type dmodel struct {
		d              uint64
		m              modelAudit
		margin, regret *sketch.Sketch
		ex             []Exemplar
	}
	src.mu.Lock()
	var kinds [numKinds]uint64 = src.kinds
	dropped := src.dropped
	tracks := make([]trackRecs, 0, len(src.tracks))
	for _, t := range sortedTracks(src.tracks) {
		tracks = append(tracks, trackRecs{t, src.tracks[t].ordered()})
	}
	applies := make([]kapply, 0, len(src.applies))
	for _, k := range sortedApplyKeys(src.applies) {
		applies = append(applies, kapply{k, *src.applies[k]})
	}
	guards := make([]kguard, 0, len(src.guards))
	for _, k := range sortedGuardKeys(src.guards) {
		guards = append(guards, kguard{k, src.guards[k]})
	}
	models := make([]dmodel, 0, len(src.models))
	for _, d := range sortedModelDigests(src.models) {
		m := src.models[d]
		margin, regret := sketch.New(), sketch.New()
		margin.Merge(m.margin)
		regret.Merge(m.regret)
		ex := make([]Exemplar, 0, len(m.exemplars))
		for _, e := range m.exemplars {
			ex = append(ex, Exemplar{Block: e.Block, Level: e.Level, Vec: append([]float64(nil), e.Vec...)})
		}
		models = append(models, dmodel{d, *m, margin, regret, ex})
	}
	src.mu.Unlock()

	r.mu.Lock()
	for k, n := range kinds {
		r.kinds[k] += n
	}
	r.dropped += dropped
	for _, tr := range tracks {
		rg, ok := r.tracks[tr.track]
		if !ok {
			rg = &ring{}
			r.tracks[tr.track] = rg
		}
		for _, rec := range tr.recs {
			rec.Seq = r.seq
			r.seq++
			if rg.push(rec, r.cfg.RingSize) {
				r.dropped++
			}
		}
	}
	for _, ka := range applies {
		c, ok := r.applies[ka.k]
		if !ok {
			c = &applyCell{name: ka.c.name}
			r.applies[ka.k] = c
		}
		c.count += ka.c.count
	}
	for _, kg := range guards {
		r.guards[kg.k] += kg.n
	}
	for _, dm := range models {
		m := r.model(dm.d, dm.m.name)
		m.decisions += dm.m.decisions
		m.probes += dm.m.probes
		m.agrees += dm.m.agrees
		m.margin.Merge(dm.margin)
		m.regret.Merge(dm.regret)
		for _, e := range dm.ex {
			if r.cfg.Exemplars <= 0 {
				break
			}
			m.seen++
			if len(m.exemplars) < r.cfg.Exemplars {
				m.exemplars = append(m.exemplars, e)
			} else if j := splitmix64(r.cfg.Seed^m.seen) % m.seen; j < uint64(r.cfg.Exemplars) {
				m.exemplars[j] = e
			}
		}
	}
	r.mu.Unlock()
}

func sortedTracks(m map[int]*ring) []int {
	ts := make([]int, 0, len(m))
	for t := range m {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	return ts
}

func sortedApplyKeys(m map[applyKey]*applyCell) []applyKey {
	ks := make([]applyKey, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].less(ks[j]) })
	return ks
}

func sortedGuardKeys(m map[guardKey]uint64) []guardKey {
	ks := make([]guardKey, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].less(ks[j]) })
	return ks
}

func sortedModelDigests(m map[uint64]*modelAudit) []uint64 {
	ds := make([]uint64, 0, len(m))
	for d := range m {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}

// KindCount is one record kind's total in a snapshot.
type KindCount struct {
	Kind  string `json:"kind"`
	Count uint64 `json:"count"`
}

// RecordSnapshot is one ring record in a snapshot.
type RecordSnapshot struct {
	Seq    uint64  `json:"seq"`
	AtS    float64 `json:"atS"`
	Kind   string  `json:"kind"`
	Source string  `json:"source"`
	Model  string  `json:"model"`
	Digest string  `json:"digest,omitempty"`
	Block  int     `json:"block"`
	Layer  int     `json:"layer"`
	Level  int     `json:"level"`
	Runner int     `json:"runner"`
	Margin float64 `json:"margin"`
	Feat   string  `json:"feat,omitempty"`
	Reason string  `json:"reason,omitempty"`
}

// TrackSnapshot is one track's ring, oldest record first.
type TrackSnapshot struct {
	Track   int              `json:"track"`
	Records []RecordSnapshot `json:"records"`
}

// ApplySnapshot is one plan-application aggregate cell.
type ApplySnapshot struct {
	Model  string `json:"model"`
	Digest string `json:"digest"`
	Block  int    `json:"block"`
	Layer  int    `json:"layer"`
	Level  int    `json:"level"`
	Count  uint64 `json:"count"`
}

// GuardEventSnapshot is one guard (event, reason) aggregate.
type GuardEventSnapshot struct {
	Event  string `json:"event"`
	Reason string `json:"reason,omitempty"`
	Count  uint64 `json:"count"`
}

// ExemplarSnapshot is one reservoir-sampled decision input.
type ExemplarSnapshot struct {
	Block int       `json:"block"`
	Level int       `json:"level"`
	Vec   []float64 `json:"vec"`
}

// ModelSnapshot is one model digest's calibration state.
type ModelSnapshot struct {
	Model          string             `json:"model"`
	Digest         string             `json:"digest"`
	Decisions      uint64             `json:"decisions"`
	Probes         uint64             `json:"probes"`
	Agreements     uint64             `json:"agreements"`
	AgreementRatio float64            `json:"agreementRatio"`
	MarginP50      float64            `json:"marginP50"`
	RegretP50      float64            `json:"regretP50"`
	RegretP90      float64            `json:"regretP90"`
	RegretP99      float64            `json:"regretP99"`
	RegretMax      float64            `json:"regretMax"`
	MarginSketch   []byte             `json:"marginSketch,omitempty"`
	RegretSketch   []byte             `json:"regretSketch,omitempty"`
	Exemplars      []ExemplarSnapshot `json:"exemplars,omitempty"`
}

// Snapshot is a deterministic point-in-time copy of a recorder.
type Snapshot struct {
	Schema      int                  `json:"schema"`
	Records     uint64               `json:"records"`
	Dropped     uint64               `json:"dropped"`
	Kinds       []KindCount          `json:"kinds"`
	Tracks      []TrackSnapshot      `json:"tracks"`
	Applies     []ApplySnapshot      `json:"applies"`
	GuardEvents []GuardEventSnapshot `json:"guardEvents"`
	Models      []ModelSnapshot      `json:"models"`
	Drift       *DriftStatus         `json:"drift,omitempty"`
}

// SnapshotSchema identifies the audit snapshot layout.
const SnapshotSchema = 1

// Snapshot returns the recorder's state with every map walked in sorted key
// order. Equal recorders produce equal snapshots (and, through WriteJSON and
// EncodeBinary, equal bytes).
func (r *Recorder) Snapshot() Snapshot {
	snap := Snapshot{
		Schema: SnapshotSchema,
		Kinds:  []KindCount{}, Tracks: []TrackSnapshot{},
		Applies: []ApplySnapshot{}, GuardEvents: []GuardEventSnapshot{},
		Models: []ModelSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := Kind(1); k < numKinds; k++ {
		snap.Records += r.kinds[k]
		if r.kinds[k] > 0 {
			snap.Kinds = append(snap.Kinds, KindCount{Kind: k.String(), Count: r.kinds[k]})
		}
	}
	snap.Dropped = r.dropped
	for _, t := range sortedTracks(r.tracks) {
		ts := TrackSnapshot{Track: t, Records: []RecordSnapshot{}}
		for _, rec := range r.tracks[t].ordered() {
			rs := RecordSnapshot{
				Seq: rec.Seq, AtS: rec.At.Seconds(), Kind: rec.Kind.String(),
				Source: rec.Source, Model: rec.Model,
				Block: int(rec.Block), Layer: int(rec.Layer),
				Level: int(rec.Level), Runner: int(rec.Runner),
				Margin: rec.Margin, Reason: rec.Reason,
			}
			if rec.Digest != 0 {
				rs.Digest = fmt.Sprintf("%016x", rec.Digest)
			}
			if rec.Feat != 0 {
				rs.Feat = fmt.Sprintf("%016x", rec.Feat)
			}
			ts.Records = append(ts.Records, rs)
		}
		snap.Tracks = append(snap.Tracks, ts)
	}
	for _, k := range sortedApplyKeys(r.applies) {
		c := r.applies[k]
		snap.Applies = append(snap.Applies, ApplySnapshot{
			Model: c.name, Digest: fmt.Sprintf("%016x", k.Digest),
			Block: int(k.Block), Layer: int(k.Layer), Level: int(k.Level),
			Count: c.count,
		})
	}
	for _, k := range sortedGuardKeys(r.guards) {
		snap.GuardEvents = append(snap.GuardEvents, GuardEventSnapshot{
			Event: k.Event, Reason: k.Reason, Count: r.guards[k],
		})
	}
	for _, d := range sortedModelDigests(r.models) {
		m := r.models[d]
		ms := ModelSnapshot{
			Model: m.name, Digest: fmt.Sprintf("%016x", d),
			Decisions: m.decisions, Probes: m.probes, Agreements: m.agrees,
			MarginP50: m.margin.Quantile(0.5),
			RegretP50: m.regret.Quantile(0.5), RegretP90: m.regret.Quantile(0.9),
			RegretP99: m.regret.Quantile(0.99), RegretMax: m.regret.Max(),
			MarginSketch: m.margin.EncodeBinary(),
			RegretSketch: m.regret.EncodeBinary(),
		}
		if m.probes > 0 {
			ms.AgreementRatio = float64(m.agrees) / float64(m.probes)
		}
		for _, e := range m.exemplars {
			ms.Exemplars = append(ms.Exemplars, ExemplarSnapshot{
				Block: int(e.Block), Level: int(e.Level),
				Vec: append([]float64(nil), e.Vec...),
			})
		}
		snap.Models = append(snap.Models, ms)
	}
	drift := r.drift
	if drift != nil {
		st := drift.Status()
		snap.Drift = &st
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON. Deterministic: equal
// recorders write equal bytes.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ExportTo publishes the recorder into an obs Registry as audit_* families.
// Intended to be called once after a run completes (it accumulates, so
// calling it twice double-counts).
func (r *Recorder) ExportTo(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	snap := r.Snapshot()
	records := reg.Counter("audit_records_total", "Audit records emitted, by kind.", "kind")
	dropped := reg.Counter("audit_records_dropped_total", "Audit ring records evicted (drop-oldest).")
	applies := reg.Counter("audit_plan_applies_total",
		"Plan applications at instrumentation points, per (model, block, level).",
		"model", "block", "level")
	guards := reg.Counter("audit_guard_events_total", "Guard lifecycle events, by (event, reason).", "event", "reason")
	decisions := reg.Counter("audit_decisions_total", "Decision-model inferences audited, per model.", "model")
	probes := reg.Counter("audit_probes_total", "Calibration probes run, per model.", "model")
	agrees := reg.Counter("audit_probe_agreements_total",
		"Calibration probes where the decision model matched the oracle, per model.", "model")
	ratio := reg.Gauge("audit_decision_agreement_ratio",
		"Fraction of calibration probes agreeing with the oracle, per model.", "model")
	regret := reg.Sketch("audit_probe_regret", "Relative energy regret vs the oracle on probed decisions, per model.", "model")
	margin := reg.Sketch("audit_decision_margin", "Softmax margin between chosen and runner-up level, per model.", "model")

	for _, k := range snap.Kinds {
		records.Add(float64(k.Count), k.Kind)
	}
	dropped.Add(float64(snap.Dropped))
	for _, a := range snap.Applies {
		applies.Add(float64(a.Count), a.Model, fmt.Sprintf("%d", a.Block), fmt.Sprintf("%d", a.Level))
	}
	for _, g := range snap.GuardEvents {
		guards.Add(float64(g.Count), g.Event, g.Reason)
	}
	for _, m := range snap.Models {
		decisions.Add(float64(m.Decisions), m.Model)
		probes.Add(float64(m.Probes), m.Model)
		agrees.Add(float64(m.Agreements), m.Model)
		if m.Probes > 0 {
			ratio.Set(m.AgreementRatio, m.Model)
		}
		if sk, err := sketch.Decode(m.RegretSketch); err == nil {
			regret.MergeFrom(sk, m.Model)
		}
		if sk, err := sketch.Decode(m.MarginSketch); err == nil {
			margin.MergeFrom(sk, m.Model)
		}
	}
	if snap.Drift != nil {
		score := reg.Gauge("audit_drift_score", "PSI divergence of the live feature distribution vs the training baseline, per dimension.", "dim")
		alerting := reg.Gauge("audit_drift_alerting", "1 when any feature dimension's PSI divergence exceeds the threshold.")
		for _, d := range snap.Drift.Dims {
			name := d.Name
			if name == "" {
				name = fmt.Sprintf("%d", d.Dim)
			}
			score.Set(d.Score, name)
		}
		v := 0.0
		if snap.Drift.Alerting {
			v = 1
		}
		alerting.Set(v)
	}
}
