package audit

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// fill folds n pseudo-vectors drawn around the given scale into b. The rand
// source makes the two distributions realistic without being adversarial;
// seeds are fixed so the test is deterministic.
func fill(b *Baseline, n int, scale float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	vec := make([]float64, b.NumDims())
	for i := 0; i < n; i++ {
		for d := range vec {
			vec[d] = scale * (1 + rng.Float64()) * float64(d+1)
		}
		b.Observe(vec)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := NewBaseline(5)
	fill(b, 200, 1.0, 7)
	enc := b.EncodeBinary()
	if !bytes.Equal(enc, b.EncodeBinary()) {
		t.Fatal("encoding not stable")
	}
	dec, err := DecodeBaseline(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumDims() != 5 || dec.Count() != 200 {
		t.Fatalf("decoded shape %d dims / %d vecs", dec.NumDims(), dec.Count())
	}
	if !bytes.Equal(enc, dec.EncodeBinary()) {
		t.Fatal("re-encoding a decoded baseline changed the bytes")
	}
	// Nil and empty baselines encode and decode too.
	var nilB *Baseline
	if _, err := DecodeBaseline(nilB.EncodeBinary()); err != nil {
		t.Fatalf("nil baseline round trip: %v", err)
	}
}

func TestDecodeBaselineRejectsCorruption(t *testing.T) {
	b := NewBaseline(3)
	fill(b, 50, 1.0, 1)
	enc := b.EncodeBinary()
	if _, err := DecodeBaseline(enc[:8]); err == nil {
		t.Fatal("truncated baseline accepted")
	}
	if _, err := DecodeBaseline([]byte("PLAUxxxxxxxxxxxxxxxx")); err == nil {
		t.Fatal("foreign magic accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[4] = 9
	if _, err := DecodeBaseline(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := DecodeBaseline(append(append([]byte(nil), enc...), 1)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestPSIQuietOnSameDistribution(t *testing.T) {
	base := NewBaseline(4)
	live := NewBaseline(4)
	fill(base, 400, 1.0, 11)
	fill(live, 400, 1.0, 22) // same distribution, different draw
	d := &Drift{base: base, live: live, threshold: DefaultDriftThreshold}
	st := d.Status()
	if st.Alerting {
		t.Fatalf("same-distribution traffic alerted: %+v", st)
	}
	if st.MaxScore >= DefaultDriftThreshold {
		t.Fatalf("max PSI %.3f too close to threshold on same distribution", st.MaxScore)
	}
}

func TestPSIDetectsShift(t *testing.T) {
	base := NewBaseline(4)
	live := NewBaseline(4)
	fill(base, 400, 1.0, 11)
	fill(live, 400, 8.0, 22) // 8x scale shift
	d := &Drift{base: base, live: live, threshold: DefaultDriftThreshold}
	st := d.Status()
	if !st.Alerting || st.AlertingDims != 4 {
		t.Fatalf("8x shift not detected: %+v", st)
	}
	if st.MaxScore <= DefaultDriftThreshold {
		t.Fatalf("max PSI %.3f under threshold after 8x shift", st.MaxScore)
	}
}

func TestPSIEmptySidesQuiet(t *testing.T) {
	base := NewBaseline(2)
	fill(base, 100, 1.0, 3)
	d := NewDrift(base, 0)
	if st := d.Status(); st.Alerting || st.MaxScore != 0 {
		t.Fatalf("empty live side must score 0: %+v", st)
	}
	if d.Threshold() != DefaultDriftThreshold {
		t.Fatalf("threshold default wrong: %v", d.Threshold())
	}
}

func TestDriftObserveResetAndDeterminism(t *testing.T) {
	base := NewBaseline(3)
	fill(base, 300, 1.0, 5)
	mk := func() []byte {
		d := NewDrift(base, 0.3)
		d.SetDimNames([]string{"a", "b", "c"})
		vec := []float64{10, 20, 30}
		for i := 0; i < 50; i++ {
			d.Observe(vec)
		}
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("drift status JSON not deterministic")
	}

	d := NewDrift(base, 0.3)
	for i := 0; i < 50; i++ {
		d.Observe([]float64{100, 200, 300})
	}
	if st := d.Status(); !st.Alerting {
		t.Fatalf("shifted live traffic must alert: %+v", st)
	}
	d.ResetLive()
	st := d.Status()
	if st.LiveCount != 0 || st.Alerting || st.MaxScore != 0 {
		t.Fatalf("ResetLive left state behind: %+v", st)
	}
	if st.BaselineCount != 300 {
		t.Fatalf("ResetLive touched the baseline: %+v", st)
	}
}

func TestNilDriftIsNoOp(t *testing.T) {
	var d *Drift
	d.Observe([]float64{1})
	d.ResetLive()
	d.SetDimNames([]string{"x"})
	if st := d.Status(); st.Alerting || len(st.Dims) != 0 {
		t.Fatalf("nil drift status not empty: %+v", st)
	}
}

func TestDriftInSnapshotAndExport(t *testing.T) {
	base := NewBaseline(2)
	fill(base, 200, 1.0, 9)
	d := NewDrift(base, 0.25)
	d.SetDimNames([]string{"flops", "params"})
	for i := 0; i < 100; i++ {
		d.Observe([]float64{50, 60})
	}
	r := New(Config{})
	r.AttachDrift(d)
	if r.DriftMonitor() != d {
		t.Fatal("DriftMonitor lost the attachment")
	}
	snap := r.Snapshot()
	if snap.Drift == nil || !snap.Drift.Alerting {
		t.Fatalf("snapshot missing drift state: %+v", snap.Drift)
	}
	if !reflect.DeepEqual(*snap.Drift, d.Status()) {
		t.Fatal("snapshot drift differs from monitor status")
	}
}
