package audit

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"powerlens/internal/obs/sketch"
)

// Baseline is the per-dimension distribution of a feature-vector stream:
// one log-bucket sketch per dimension plus a vector count. The offline
// pipeline folds the training dataset's raw global-feature vectors into a
// baseline and persists it as the run's baseline.plqs artifact; the drift
// monitor compares live traffic against it.
//
// Baseline is not synchronized; the training fold is single-threaded and the
// live side is owned by Drift, which holds its own lock.
type Baseline struct {
	dims []*sketch.Sketch
	n    uint64 // vectors observed
}

// NewBaseline returns an empty baseline over ndims feature dimensions.
func NewBaseline(ndims int) *Baseline {
	b := &Baseline{dims: make([]*sketch.Sketch, ndims)}
	for i := range b.dims {
		b.dims[i] = sketch.New()
	}
	return b
}

// NumDims reports the number of feature dimensions.
func (b *Baseline) NumDims() int {
	if b == nil {
		return 0
	}
	return len(b.dims)
}

// Count reports the number of vectors observed.
func (b *Baseline) Count() uint64 {
	if b == nil {
		return 0
	}
	return b.n
}

// Observe folds one feature vector. Vectors shorter than NumDims leave the
// tail dimensions untouched; extra elements are ignored. Feature values are
// expected non-negative (the global feature facets are log1p magnitudes and
// fractions); negatives clamp to the sketch's zero bucket.
func (b *Baseline) Observe(vec []float64) {
	if b == nil {
		return
	}
	b.n++
	for i, s := range b.dims {
		if i >= len(vec) {
			break
		}
		s.Observe(vec[i])
	}
}

// Dim returns the quantile sketch of one feature dimension, or nil when the
// index is out of range. The returned sketch is live state, not a copy; use
// it read-only.
func (b *Baseline) Dim(i int) *sketch.Sketch {
	if b == nil || i < 0 || i >= len(b.dims) {
		return nil
	}
	return b.dims[i]
}

// IsBaseline sniffs whether b starts with the "PLAB" baseline magic.
func IsBaseline(b []byte) bool {
	return len(b) >= len(plabMagic) && string(b[:len(plabMagic)]) == plabMagic
}

// Reset empties the baseline while keeping its dimensions.
func (b *Baseline) Reset() {
	if b == nil {
		return
	}
	b.n = 0
	for _, s := range b.dims {
		s.Reset()
	}
}

// Baseline encoding: a "PLAB" container holding one length-prefixed PLQS
// sketch per dimension. Same conventions as PLQS/PLAU: magic + version,
// big-endian fixed-width fields, byte-stable.
const (
	plabMagic   = "PLAB" // PowerLens Audit Baseline
	plabVersion = 1

	maxBaselineDims = 1 << 16
)

// AppendBinary appends the byte-stable "PLAB" encoding of b to dst.
func (b *Baseline) AppendBinary(dst []byte) []byte {
	dst = append(dst, plabMagic...)
	dst = append(dst, plabVersion)
	if b == nil {
		dst = binary.BigEndian.AppendUint32(dst, 0)
		dst = binary.BigEndian.AppendUint64(dst, 0)
		return dst
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b.dims)))
	dst = binary.BigEndian.AppendUint64(dst, b.n)
	for _, s := range b.dims {
		enc := s.EncodeBinary()
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(enc)))
		dst = append(dst, enc...)
	}
	return dst
}

// EncodeBinary returns the byte-stable "PLAB" encoding of b.
func (b *Baseline) EncodeBinary() []byte {
	return b.AppendBinary(make([]byte, 0, 256))
}

// DecodeBaseline parses an encoding produced by Baseline.AppendBinary,
// validating magic, version and framing.
func DecodeBaseline(b []byte) (*Baseline, error) {
	if len(b) < len(plabMagic)+1+4+8 {
		return nil, fmt.Errorf("audit: baseline payload too short: %d bytes", len(b))
	}
	if string(b[:len(plabMagic)]) != plabMagic {
		return nil, fmt.Errorf("audit: bad baseline magic %q", b[:len(plabMagic)])
	}
	if v := b[len(plabMagic)]; v != plabVersion {
		return nil, fmt.Errorf("audit: unsupported baseline version %d", v)
	}
	p := &plauReader{b: b[len(plabMagic)+1:]}
	ndims := int(p.u32())
	if ndims > maxBaselineDims {
		return nil, fmt.Errorf("audit: baseline dimension count %d exceeds cap", ndims)
	}
	out := &Baseline{dims: make([]*sketch.Sketch, 0, ndims)}
	out.n = p.u64()
	for i := 0; i < ndims && p.err == nil; i++ {
		out.dims = append(out.dims, p.sketch())
	}
	if p.err != nil {
		return nil, p.err
	}
	if len(p.b) != 0 {
		return nil, fmt.Errorf("audit: %d trailing bytes after baseline", len(p.b))
	}
	return out, nil
}

// DefaultDriftThreshold is the PSI score above which a dimension counts as
// drifted. The classic credit-scoring rule of thumb calls PSI < 0.1 stable
// and > 0.25 a significant shift.
const DefaultDriftThreshold = 0.25

// psiEps is the Laplace smoothing mass added to every bin so empty bins
// contribute finite divergence.
const psiEps = 0.5

// psiBins is the number of baseline-quantile bins PSI is computed over — the
// classic decile binning. Binning at baseline quantiles (rather than over the
// sketches' raw log buckets) keeps the bin count small and fixed, so the
// score converges with modest sample counts instead of being dominated by
// smoothing mass spread across dozens of sparse buckets.
const psiBins = 10

// psi computes the Population Stability Index between two sketches of the
// same dimension: live traffic is re-binned at the baseline's quantile edges
// and the score is sum over bins of (p - q) * ln(p / q) with Laplace-smoothed
// bin probabilities. Everything derives from integral bucket counts walked in
// ascending order, so equal sketches produce equal scores regardless of how
// observations were partitioned before merging. Returns 0 when either side
// is empty.
func psi(base, live *sketch.Sketch) float64 {
	nb, nl := base.Count(), live.Count()
	if nb == 0 || nl == 0 {
		return 0
	}
	// Bin edges at the baseline's quantiles, deduplicated (a concentrated
	// distribution collapses neighbouring deciles onto one bucket midpoint).
	// Bin i covers (edge[i-1], edge[i]]; the last bin is open-ended.
	edges := make([]float64, 0, psiBins-1)
	for i := 1; i < psiBins; i++ {
		e := base.Quantile(float64(i) / psiBins)
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	cb := psiBinCounts(base, edges)
	cl := psiBinCounts(live, edges)
	k := len(edges) + 1
	denomB := float64(nb) + psiEps*float64(k)
	denomL := float64(nl) + psiEps*float64(k)
	var sum float64
	for i := 0; i < k; i++ {
		p := (float64(cb[i]) + psiEps) / denomB
		q := (float64(cl[i]) + psiEps) / denomL
		sum += (p - q) * math.Log(p/q)
	}
	return sum
}

// psiBinCounts assigns a sketch's mass to the quantile bins: zeros land in
// the first bin and each occupied log bucket lands in the first bin whose
// edge is >= its representative value (edges are bucket midpoints themselves,
// so baseline buckets sitting on an edge map inclusively).
func psiBinCounts(s *sketch.Sketch, edges []float64) []uint64 {
	counts := make([]uint64, len(edges)+1)
	counts[0] = s.Zeros()
	bin := 0
	for _, b := range s.Buckets() {
		v := sketch.BucketValue(b.Index)
		for bin < len(edges) && v > edges[bin] {
			bin++
		}
		counts[bin] += b.Count
	}
	return counts
}

// Drift compares the live feature distribution against a training-time
// baseline with a per-dimension PSI score. Safe for concurrent use. A nil
// *Drift accepts every call and does nothing.
type Drift struct {
	mu        sync.Mutex
	base      *Baseline
	live      *Baseline
	threshold float64
	names     []string
}

// NewDrift returns a monitor comparing live traffic against base.
// threshold <= 0 takes DefaultDriftThreshold.
func NewDrift(base *Baseline, threshold float64) *Drift {
	if threshold <= 0 {
		threshold = DefaultDriftThreshold
	}
	return &Drift{base: base, live: NewBaseline(base.NumDims()), threshold: threshold}
}

// SetDimNames attaches human-readable dimension names (features.GlobalDimNames)
// for status output. The slice is copied.
func (d *Drift) SetDimNames(names []string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.names = append([]string(nil), names...)
	d.mu.Unlock()
}

// Observe folds one live feature vector.
func (d *Drift) Observe(vec []float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.live.Observe(vec)
	d.mu.Unlock()
}

// ResetLive empties the live side (e.g. between traffic phases) while
// keeping the baseline.
func (d *Drift) ResetLive() {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.live.Reset()
	d.mu.Unlock()
}

// Threshold reports the alerting threshold.
func (d *Drift) Threshold() float64 {
	if d == nil {
		return 0
	}
	return d.threshold
}

// DimDrift is one feature dimension's divergence state.
type DimDrift struct {
	Dim      int     `json:"dim"`
	Name     string  `json:"name,omitempty"`
	Score    float64 `json:"score"`
	Alerting bool    `json:"alerting"`
}

// DriftStatus is a deterministic point-in-time view of a drift monitor.
type DriftStatus struct {
	Schema        int        `json:"schema"`
	Threshold     float64    `json:"threshold"`
	BaselineCount uint64     `json:"baselineCount"`
	LiveCount     uint64     `json:"liveCount"`
	MaxScore      float64    `json:"maxScore"`
	MaxDim        int        `json:"maxDim"`
	AlertingDims  int        `json:"alertingDims"`
	Alerting      bool       `json:"alerting"`
	Dims          []DimDrift `json:"dims"`
}

// DriftStatusSchema identifies the DriftStatus JSON layout.
const DriftStatusSchema = 1

// Status scores every dimension. Deterministic: dimensions ascending, PSI
// accumulation order fixed; equal monitors produce equal statuses.
func (d *Drift) Status() DriftStatus {
	st := DriftStatus{Schema: DriftStatusSchema, Dims: []DimDrift{}}
	if d == nil {
		return st
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st.Threshold = d.threshold
	st.BaselineCount = d.base.Count()
	st.LiveCount = d.live.Count()
	for i := 0; i < d.base.NumDims(); i++ {
		dd := DimDrift{Dim: i, Score: psi(d.base.dims[i], d.live.dims[i])}
		if i < len(d.names) {
			dd.Name = d.names[i]
		}
		dd.Alerting = dd.Score > d.threshold
		if dd.Alerting {
			st.AlertingDims++
			st.Alerting = true
		}
		if dd.Score > st.MaxScore {
			st.MaxScore, st.MaxDim = dd.Score, i
		}
		st.Dims = append(st.Dims, dd)
	}
	return st
}

// WriteJSON writes the status as indented JSON; equal monitors write equal
// bytes. The /drift endpoint and the drift scenario artifact both use this.
func (d *Drift) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d.Status())
}
