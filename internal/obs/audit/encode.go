package audit

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"powerlens/internal/obs/sketch"
)

// Encoding constants. The "PLAU" container follows the PLQS conventions:
// magic + version prefix, fixed-width big-endian fields, every map walked in
// sorted key order, so equal recorders always encode to equal bytes and
// Decode rejects foreign or stale payloads.
const (
	plauMagic   = "PLAU" // PowerLens AUdit
	plauVersion = 1

	maxPlauStr = 1 << 10 // defensive cap on decoded string lengths
)

func appendStr(b []byte, s string) []byte {
	if len(s) > maxPlauStr {
		s = s[:maxPlauStr]
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendRecord(b []byte, rec Record) []byte {
	b = binary.BigEndian.AppendUint64(b, rec.Seq)
	b = binary.BigEndian.AppendUint64(b, uint64(rec.At))
	b = append(b, byte(rec.Kind))
	b = appendStr(b, rec.Source)
	b = appendStr(b, rec.Model)
	b = binary.BigEndian.AppendUint64(b, rec.Digest)
	b = binary.BigEndian.AppendUint32(b, uint32(rec.Block))
	b = binary.BigEndian.AppendUint32(b, uint32(rec.Layer))
	b = binary.BigEndian.AppendUint32(b, uint32(rec.Level))
	b = binary.BigEndian.AppendUint32(b, uint32(rec.Runner))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(rec.Margin))
	b = binary.BigEndian.AppendUint64(b, rec.Feat)
	b = appendStr(b, rec.Reason)
	return b
}

// AppendBinary appends the byte-stable "PLAU" encoding of r to b and returns
// the extended slice. Equal recorders encode to equal bytes regardless of the
// order events or merges happened in. The attached drift monitor is not part
// of the encoding (baselines have their own "PLAB" container; see Baseline).
func (r *Recorder) AppendBinary(b []byte) []byte {
	snap := struct {
		kinds   [numKinds]uint64
		dropped uint64
		tracks  []int
		rings   [][]Record
		applies []applyKey
		cells   []applyCell
		guards  []guardKey
		gcounts []uint64
		digests []uint64
		models  []*modelAudit
	}{}
	if r != nil {
		r.mu.Lock()
		snap.kinds = r.kinds
		snap.dropped = r.dropped
		snap.tracks = sortedTracks(r.tracks)
		for _, t := range snap.tracks {
			snap.rings = append(snap.rings, r.tracks[t].ordered())
		}
		snap.applies = sortedApplyKeys(r.applies)
		for _, k := range snap.applies {
			snap.cells = append(snap.cells, *r.applies[k])
		}
		snap.guards = sortedGuardKeys(r.guards)
		for _, k := range snap.guards {
			snap.gcounts = append(snap.gcounts, r.guards[k])
		}
		snap.digests = sortedModelDigests(r.models)
		for _, d := range snap.digests {
			snap.models = append(snap.models, r.models[d])
		}
		defer r.mu.Unlock()
	}

	b = append(b, plauMagic...)
	b = append(b, plauVersion)
	for k := Kind(1); k < numKinds; k++ {
		b = binary.BigEndian.AppendUint64(b, snap.kinds[k])
	}
	b = binary.BigEndian.AppendUint64(b, snap.dropped)

	b = binary.BigEndian.AppendUint32(b, uint32(len(snap.tracks)))
	for i, t := range snap.tracks {
		b = binary.BigEndian.AppendUint32(b, uint32(t))
		b = binary.BigEndian.AppendUint32(b, uint32(len(snap.rings[i])))
		for _, rec := range snap.rings[i] {
			b = appendRecord(b, rec)
		}
	}

	b = binary.BigEndian.AppendUint32(b, uint32(len(snap.applies)))
	for i, k := range snap.applies {
		b = binary.BigEndian.AppendUint64(b, k.Digest)
		b = binary.BigEndian.AppendUint32(b, uint32(k.Block))
		b = binary.BigEndian.AppendUint32(b, uint32(k.Layer))
		b = binary.BigEndian.AppendUint32(b, uint32(k.Level))
		b = appendStr(b, snap.cells[i].name)
		b = binary.BigEndian.AppendUint64(b, snap.cells[i].count)
	}

	b = binary.BigEndian.AppendUint32(b, uint32(len(snap.guards)))
	for i, k := range snap.guards {
		b = appendStr(b, k.Event)
		b = appendStr(b, k.Reason)
		b = binary.BigEndian.AppendUint64(b, snap.gcounts[i])
	}

	b = binary.BigEndian.AppendUint32(b, uint32(len(snap.digests)))
	for i, d := range snap.digests {
		m := snap.models[i]
		b = binary.BigEndian.AppendUint64(b, d)
		b = appendStr(b, m.name)
		b = binary.BigEndian.AppendUint64(b, m.decisions)
		b = binary.BigEndian.AppendUint64(b, m.probes)
		b = binary.BigEndian.AppendUint64(b, m.agrees)
		b = binary.BigEndian.AppendUint64(b, m.seen)
		b = appendSketch(b, m.margin)
		b = appendSketch(b, m.regret)
		b = binary.BigEndian.AppendUint32(b, uint32(len(m.exemplars)))
		for _, e := range m.exemplars {
			b = binary.BigEndian.AppendUint32(b, uint32(e.Block))
			b = binary.BigEndian.AppendUint32(b, uint32(e.Level))
			b = binary.BigEndian.AppendUint32(b, uint32(len(e.Vec)))
			for _, v := range e.Vec {
				b = binary.BigEndian.AppendUint64(b, math.Float64bits(v))
			}
		}
	}
	return b
}

func appendSketch(b []byte, s *sketch.Sketch) []byte {
	enc := s.EncodeBinary()
	b = binary.BigEndian.AppendUint32(b, uint32(len(enc)))
	return append(b, enc...)
}

// EncodeBinary returns the byte-stable "PLAU" encoding of r.
func (r *Recorder) EncodeBinary() []byte {
	return r.AppendBinary(make([]byte, 0, 1024))
}

// plauReader is a cursor over a PLAU payload whose reads validate remaining
// length before every access, so truncated or corrupted payloads error out
// instead of panicking or fabricating state.
type plauReader struct {
	b   []byte
	err error
}

func (p *plauReader) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("audit: "+format, args...)
	}
}

func (p *plauReader) take(n int) []byte {
	if p.err != nil {
		return nil
	}
	if len(p.b) < n {
		p.fail("payload truncated: want %d bytes, have %d", n, len(p.b))
		return nil
	}
	out := p.b[:n]
	p.b = p.b[n:]
	return out
}

func (p *plauReader) u8() uint8 {
	b := p.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (p *plauReader) u16() uint16 {
	b := p.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (p *plauReader) u32() uint32 {
	b := p.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (p *plauReader) u64() uint64 {
	b := p.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (p *plauReader) str() string {
	n := int(p.u16())
	if n > maxPlauStr {
		p.fail("string length %d exceeds cap", n)
		return ""
	}
	b := p.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (p *plauReader) f64() float64 { return math.Float64frombits(p.u64()) }
func (p *plauReader) i32() int32   { return int32(p.u32()) }

func (p *plauReader) sketch() *sketch.Sketch {
	n := int(p.u32())
	b := p.take(n)
	if b == nil {
		return sketch.New()
	}
	s, err := sketch.Decode(b)
	if err != nil {
		p.fail("embedded sketch: %v", err)
		return sketch.New()
	}
	return s
}

func (p *plauReader) record() Record {
	rec := Record{
		Seq: p.u64(), At: time.Duration(p.u64()), Kind: Kind(p.u8()),
	}
	rec.Source = p.str()
	rec.Model = p.str()
	rec.Digest = p.u64()
	rec.Block = p.i32()
	rec.Layer = p.i32()
	rec.Level = p.i32()
	rec.Runner = p.i32()
	rec.Margin = p.f64()
	rec.Feat = p.u64()
	rec.Reason = p.str()
	if p.err == nil && (rec.Kind == 0 || rec.Kind >= numKinds) {
		p.fail("invalid record kind %d", rec.Kind)
	}
	return rec
}

// IsPLAU reports whether b starts with the PLAU magic, for format sniffing
// (the audit CLI accepts both PLAU and snapshot-JSON files).
func IsPLAU(b []byte) bool {
	return len(b) >= len(plauMagic) && string(b[:len(plauMagic)]) == plauMagic
}

// Decode parses an encoding produced by AppendBinary/EncodeBinary into a
// recorder with default configuration. Every length is validated before use;
// truncated, trailing-garbage or internally-inconsistent payloads return an
// error rather than a bogus recorder.
func Decode(b []byte) (*Recorder, error) {
	if !IsPLAU(b) {
		return nil, fmt.Errorf("audit: bad magic in %d-byte payload", len(b))
	}
	p := &plauReader{b: b[len(plauMagic):]}
	if v := p.u8(); p.err == nil && v != plauVersion {
		return nil, fmt.Errorf("audit: unsupported version %d", v)
	}
	r := New(Config{})
	for k := Kind(1); k < numKinds; k++ {
		r.kinds[k] = p.u64()
	}
	r.dropped = p.u64()

	ntracks := int(p.u32())
	var prevTrack int
	for i := 0; i < ntracks && p.err == nil; i++ {
		track := int(int32(p.u32()))
		if i > 0 && track <= prevTrack {
			p.fail("tracks not strictly ascending at %d", track)
			break
		}
		prevTrack = track
		nrecs := int(p.u32())
		rg := &ring{}
		for j := 0; j < nrecs && p.err == nil; j++ {
			rec := p.record()
			// Decoded rings keep every record: caps grow to payload size
			// so a decode → snapshot round trip is lossless.
			rg.push(rec, max(nrecs, r.cfg.RingSize))
			if rec.Seq >= r.seq {
				r.seq = rec.Seq + 1
			}
		}
		r.tracks[track] = rg
	}

	napplies := int(p.u32())
	for i := 0; i < napplies && p.err == nil; i++ {
		k := applyKey{Digest: p.u64(), Block: p.i32(), Layer: p.i32(), Level: p.i32()}
		name := p.str()
		count := p.u64()
		if p.err == nil && count == 0 {
			p.fail("zero-count apply cell")
			break
		}
		r.applies[k] = &applyCell{name: name, count: count}
	}

	nguards := int(p.u32())
	for i := 0; i < nguards && p.err == nil; i++ {
		k := guardKey{Event: p.str(), Reason: p.str()}
		r.guards[k] = p.u64()
	}

	nmodels := int(p.u32())
	for i := 0; i < nmodels && p.err == nil; i++ {
		d := p.u64()
		m := &modelAudit{name: p.str()}
		m.decisions = p.u64()
		m.probes = p.u64()
		m.agrees = p.u64()
		m.seen = p.u64()
		m.margin = p.sketch()
		m.regret = p.sketch()
		nex := int(p.u32())
		for j := 0; j < nex && p.err == nil; j++ {
			e := Exemplar{Block: p.i32(), Level: p.i32()}
			dim := int(p.u32())
			if dim > 1<<16 {
				p.fail("exemplar dimension %d exceeds cap", dim)
				break
			}
			e.Vec = make([]float64, 0, dim)
			for v := 0; v < dim && p.err == nil; v++ {
				e.Vec = append(e.Vec, p.f64())
			}
			m.exemplars = append(m.exemplars, e)
		}
		if p.err == nil && m.agrees > m.probes {
			p.fail("model %016x: %d agreements exceed %d probes", d, m.agrees, m.probes)
			break
		}
		r.models[d] = m
	}
	if p.err != nil {
		return nil, p.err
	}
	if len(p.b) != 0 {
		return nil, fmt.Errorf("audit: %d trailing bytes after payload", len(p.b))
	}
	return r, nil
}
