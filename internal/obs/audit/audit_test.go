package audit

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"powerlens/internal/obs"
)

// feed emits a deterministic mixed event stream into r, optionally skipping
// every other event (phase selects which half), so tests can split one
// logical stream across recorders and compare the merge to the whole.
func feed(r *Recorder, phase, step int) {
	for i := 0; i < 40; i++ {
		if step > 1 && i%step != phase {
			continue
		}
		digest := uint64(0xabc0 + i%2)
		model := []string{"alexnet", "vgg16"}[i%2]
		vec := []float64{float64(i), float64(i % 5), 0.25}
		probe := r.RecordDecision(3, model, digest, i%4, i%6, (i+1)%6, 0.1+float64(i%3)*0.2, vec)
		if probe {
			r.RecordProbe(3, model, digest, i%4, i%6, i%5, float64(i%3)*0.01)
		}
		r.RecordApply(7, "powerlens", model, digest, i%4, i%9, i%6)
		if i%10 == 0 {
			r.RecordGuard(7, "strike", "PowerLens", i%6, "invalid-level")
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	mk := func() []byte {
		r := New(Config{})
		feed(r, 0, 1)
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatal("identical event streams produced different JSON")
	}
	r := New(Config{})
	feed(r, 0, 1)
	if !bytes.Equal(r.EncodeBinary(), r.EncodeBinary()) {
		t.Fatal("repeated EncodeBinary on one recorder differs")
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.RecordDecision(0, "m", 1, 0, 1, 2, 0.5, []float64{1}) {
		t.Fatal("nil recorder selected a probe")
	}
	r.RecordProbe(0, "m", 1, 0, 1, 2, 0)
	r.RecordApply(0, "s", "m", 1, 0, 0, 1)
	r.RecordGuard(0, "strike", "m", 1, "oscillation")
	r.SetClock(func() time.Duration { return 0 })
	r.Merge(New(Config{}))
	New(Config{}).Merge(r)
	snap := r.Snapshot()
	if snap.Records != 0 || len(snap.Tracks) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", snap)
	}
	if r.EncodeBinary() == nil {
		t.Fatal("nil recorder must still encode a valid empty payload")
	}
}

func TestRingDropOldest(t *testing.T) {
	r := New(Config{RingSize: 4})
	for i := 0; i < 10; i++ {
		r.RecordApply(1, "powerlens", "m", 1, 0, i, 2)
	}
	snap := r.Snapshot()
	if snap.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", snap.Dropped)
	}
	if len(snap.Tracks) != 1 || len(snap.Tracks[0].Records) != 4 {
		t.Fatalf("ring shape wrong: %+v", snap.Tracks)
	}
	for i, rec := range snap.Tracks[0].Records {
		if rec.Layer != 6+i {
			t.Fatalf("record %d has layer %d, want %d (oldest-first, drop-oldest)", i, rec.Layer, 6+i)
		}
	}
	if snap.Records != 10 {
		t.Fatalf("aggregate record count = %d, want 10 (drops must not erase totals)", snap.Records)
	}
}

func TestAggregateOnlyMode(t *testing.T) {
	r := New(Config{RingSize: -1})
	feed(r, 0, 1)
	snap := r.Snapshot()
	if len(snap.Tracks) != 0 {
		t.Fatalf("aggregate-only recorder kept rings: %+v", snap.Tracks)
	}
	if snap.Records == 0 || len(snap.Applies) == 0 || len(snap.Models) == 0 {
		t.Fatalf("aggregate-only recorder lost aggregates: %+v", snap)
	}
}

func TestProbeCadence(t *testing.T) {
	r := New(Config{ProbeEvery: 4})
	var probes []int
	for i := 0; i < 10; i++ {
		if r.RecordDecision(0, "m", 1, 0, 1, 2, 0.5, nil) {
			probes = append(probes, i)
		}
	}
	if want := []int{0, 4, 8}; !reflect.DeepEqual(probes, want) {
		t.Fatalf("probe cadence %v, want %v", probes, want)
	}
	// Cadence is per model digest.
	r2 := New(Config{ProbeEvery: 2})
	if !r2.RecordDecision(0, "a", 1, 0, 0, 0, 0, nil) {
		t.Fatal("first decision of digest 1 must probe")
	}
	if !r2.RecordDecision(0, "b", 2, 0, 0, 0, 0, nil) {
		t.Fatal("first decision of digest 2 must probe")
	}
	r3 := New(Config{ProbeEvery: -1})
	for i := 0; i < 5; i++ {
		if r3.RecordDecision(0, "m", 1, 0, 0, 0, 0, nil) {
			t.Fatal("ProbeEvery < 0 must disable probing")
		}
	}
}

func TestReservoirDeterministicAndBounded(t *testing.T) {
	mk := func() Snapshot {
		r := New(Config{Exemplars: 3})
		for i := 0; i < 50; i++ {
			r.RecordDecision(0, "m", 9, i, i%5, 0, 0.5, []float64{float64(i)})
		}
		return r.Snapshot()
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a.Models[0].Exemplars, b.Models[0].Exemplars) {
		t.Fatal("reservoir not deterministic across reruns")
	}
	ex := a.Models[0].Exemplars
	if len(ex) != 3 {
		t.Fatalf("reservoir kept %d exemplars, want 3", len(ex))
	}
	// The reservoir must not be the trivial first-3 prefix: replacement has
	// to fire across 50 offers.
	if ex[0].Block == 0 && ex[1].Block == 1 && ex[2].Block == 2 {
		t.Fatalf("reservoir never replaced: %+v", ex)
	}
}

func TestMergeMatchesSingleStream(t *testing.T) {
	whole := New(Config{RingSize: -1})
	feed(whole, 0, 1)

	a, b := New(Config{RingSize: -1}), New(Config{RingSize: -1})
	feed(a, 0, 2)
	feed(b, 1, 2)
	mergedAB := New(Config{RingSize: -1})
	mergedAB.Merge(a)
	mergedAB.Merge(b)
	mergedBA := New(Config{RingSize: -1})
	mergedBA.Merge(b)
	mergedBA.Merge(a)

	// Aggregates (applies, guard events, per-kind counts) are order-robust:
	// any partitioning and merge order yields the same cells. Per-model
	// probe/margin state follows the decision order within each model's
	// stream, which interleaved splitting changes, so compare the
	// placement-invariant parts.
	ws, ab, ba := whole.Snapshot(), mergedAB.Snapshot(), mergedBA.Snapshot()
	if !reflect.DeepEqual(ws.Applies, ab.Applies) || !reflect.DeepEqual(ws.Applies, ba.Applies) {
		t.Fatalf("apply cells diverge:\nwhole: %+v\nab: %+v\nba: %+v", ws.Applies, ab.Applies, ba.Applies)
	}
	if !reflect.DeepEqual(ws.GuardEvents, ab.GuardEvents) || !reflect.DeepEqual(ws.GuardEvents, ba.GuardEvents) {
		t.Fatalf("guard events diverge")
	}
	if !reflect.DeepEqual(ab.Applies, ba.Applies) || !reflect.DeepEqual(ab.Models, ba.Models) {
		t.Fatalf("merge order changed the merged aggregates")
	}
	var wd, ad uint64
	for _, m := range ws.Models {
		wd += m.Decisions
	}
	for _, m := range ab.Models {
		ad += m.Decisions
	}
	if wd != ad {
		t.Fatalf("decision totals diverge: whole %d, merged %d", wd, ad)
	}
}

func TestMergeRingsInTrackOrder(t *testing.T) {
	a, b := New(Config{}), New(Config{})
	a.RecordApply(1, "powerlens", "m", 1, 0, 0, 3)
	a.RecordApply(5, "powerlens", "m", 1, 0, 1, 4)
	b.RecordApply(1, "powerlens", "m", 1, 0, 2, 5)
	dst := New(Config{})
	dst.Merge(a)
	dst.Merge(b)
	snap := dst.Snapshot()
	if len(snap.Tracks) != 2 || snap.Tracks[0].Track != 1 || snap.Tracks[1].Track != 5 {
		t.Fatalf("track layout wrong: %+v", snap.Tracks)
	}
	t1 := snap.Tracks[0].Records
	if len(t1) != 2 || t1[0].Layer != 0 || t1[1].Layer != 2 {
		t.Fatalf("track 1 records wrong: %+v", t1)
	}
	// Sequence numbers are re-stamped contiguously in merge order.
	seqs := []uint64{t1[0].Seq, snap.Tracks[1].Records[0].Seq, t1[1].Seq}
	if seqs[0] != 0 || seqs[1] != 1 || seqs[2] != 2 {
		t.Fatalf("merged seqs %v, want re-stamped 0,1,2", seqs)
	}
}

func TestClockStampsRecords(t *testing.T) {
	r := New(Config{})
	now := 3 * time.Second
	r.SetClock(func() time.Duration { return now })
	r.RecordApply(0, "powerlens", "m", 1, 0, 0, 2)
	now = 5 * time.Second
	r.RecordApply(0, "powerlens", "m", 1, 0, 1, 2)
	recs := r.Snapshot().Tracks[0].Records
	if recs[0].AtS != 3 || recs[1].AtS != 5 {
		t.Fatalf("timestamps %v/%v, want 3/5", recs[0].AtS, recs[1].AtS)
	}
}

func TestPLAURoundTrip(t *testing.T) {
	r := New(Config{RingSize: 8})
	feed(r, 0, 1)
	enc := r.EncodeBinary()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Snapshot(), dec.Snapshot()) {
		t.Fatal("decoded snapshot differs from original")
	}
	if !bytes.Equal(enc, dec.EncodeBinary()) {
		t.Fatal("re-encoding a decoded recorder changed the bytes")
	}
	// Empty recorder round trip.
	empty := New(Config{})
	dec2, err := Decode(empty.EncodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(empty.Snapshot(), dec2.Snapshot()) {
		t.Fatal("empty round trip differs")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	r := New(Config{RingSize: 8})
	feed(r, 0, 1)
	enc := r.EncodeBinary()

	if _, err := Decode(nil); err == nil {
		t.Fatal("nil payload accepted")
	}
	if _, err := Decode([]byte("PLQS")); err == nil {
		t.Fatal("foreign magic accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[4] = 99
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	for _, cut := range []int{5, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestExportTo(t *testing.T) {
	r := New(Config{ProbeEvery: 2})
	feed(r, 0, 1)
	reg := obs.NewRegistry()
	r.ExportTo(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"# TYPE audit_records_total counter",
		"# TYPE audit_plan_applies_total counter",
		"# TYPE audit_guard_events_total counter",
		"# TYPE audit_decisions_total counter",
		"# TYPE audit_probes_total counter",
		"# TYPE audit_probe_agreements_total counter",
		"# TYPE audit_decision_agreement_ratio gauge",
		"# TYPE audit_probe_regret summary",
		"# TYPE audit_decision_margin summary",
		`audit_records_total{kind="decision"}`,
		`audit_guard_events_total{event="strike",reason="invalid-level"}`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("export page missing %q", want)
		}
	}
	if _, err := obs.CheckPrometheusText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exported page fails promcheck: %v", err)
	}
}

func TestHashVectorDiscriminates(t *testing.T) {
	a := HashVector([]float64{1, 2, 3})
	if a != HashVector([]float64{1, 2, 3}) {
		t.Fatal("hash not stable")
	}
	if a == HashVector([]float64{1, 2, 4}) || a == HashVector([]float64{1, 2}) {
		t.Fatal("hash does not discriminate")
	}
}
