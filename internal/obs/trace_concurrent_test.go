package obs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestTracerConcurrentReaders exercises the copy-on-read contract under the
// race detector: emitters append (and keep mutating their own args maps,
// which the tracer must have copied at emission time) while readers
// repeatedly snapshot and serialize the event list mid-run — exactly what
// the telemetry server's /runs/{id}/trace handler does.
func TestTracerConcurrentReaders(t *testing.T) {
	tr := NewTracer()
	const emitters, perEmitter, readers = 4, 200, 3

	var wg sync.WaitGroup
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			args := map[string]any{"n": 0} // reused and mutated between emissions
			for i := 0; i < perEmitter; i++ {
				args["n"] = i
				if i%2 == 0 {
					tr.Complete("block", "b", tid, time.Duration(i)*time.Millisecond, time.Millisecond, args)
				} else {
					tr.Instant("decision", "d", tid, time.Duration(i)*time.Millisecond, args)
				}
			}
		}(e + 1)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				evs := tr.Events()
				var buf bytes.Buffer
				if err := WriteChromeTrace(&buf, evs); err != nil {
					t.Errorf("mid-run WriteChromeTrace: %v", err)
					return
				}
				if _, err := ReadChromeTrace(&buf); err != nil {
					t.Errorf("mid-run round-trip: %v", err)
					return
				}
				_ = tr.Len()
			}
		}()
	}
	wg.Wait()

	evs := tr.Events()
	if len(evs) != emitters*perEmitter {
		t.Fatalf("events = %d, want %d", len(evs), emitters*perEmitter)
	}
	// The tracer copied each args map at emission time: every event must
	// carry the n it was emitted with, not the emitter's final value.
	byTID := map[int]int{}
	for _, ev := range evs {
		i := byTID[ev.TID]
		if got := ev.Args["n"]; got != i {
			t.Fatalf("track %d event %d has args n=%v, want %d (args not copied at append)", ev.TID, i, got, i)
		}
		byTID[ev.TID]++
	}
}

// TestTracerSnapshotIndependent checks a mid-run Events slice is unaffected
// by later appends.
func TestTracerSnapshotIndependent(t *testing.T) {
	tr := NewTracer()
	tr.Instant("decision", "first", 1, 0, map[string]any{"k": "v"})
	snap := tr.Events()
	tr.Instant("decision", "second", 1, time.Millisecond, nil)
	if len(snap) != 1 || snap[0].Name != "first" {
		t.Fatalf("snapshot changed after append: %+v", snap)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
}
