package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span-based decision tracing. Every governor decision, DVFS actuation,
// power-block residency, fault injection, guard intervention and cluster job
// lifecycle event is recorded as a timestamped event on a track (tid) and
// exported in the Chrome trace_event JSON format, so a run can be inspected
// in Perfetto or chrome://tracing. Timestamps are *simulated* time — the
// trace shows what happened on the simulated board, not host wall time.

// Trace event phases (the trace_event "ph" field).
const (
	PhaseComplete = "X" // a span with a duration
	PhaseInstant  = "i" // a point event
)

// Event is one trace_event entry. TsUS/DurUS are microseconds, the unit the
// Chrome trace format mandates.
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TsUS  float64        `json:"ts"`
	DurUS float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args  map[string]any `json:"args,omitempty"`

	seq int // emission order, for stable sorting
}

// Start returns the event timestamp as a duration since trace start.
func (e Event) Start() time.Duration { return time.Duration(e.TsUS * float64(time.Microsecond)) }

// Duration returns the span length (zero for instants).
func (e Event) Duration() time.Duration { return time.Duration(e.DurUS * float64(time.Microsecond)) }

// Tracer collects events. Safe for concurrent use (cluster nodes trace from
// their own goroutines); a nil *Tracer is valid and records nothing.
type Tracer struct {
	mu     sync.Mutex
	events []Event
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func usOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func (t *Tracer) append(e Event) {
	// Copy the args map so the tracer owns every event outright: emitters may
	// reuse or mutate their args maps after the call, and the HTTP server
	// snapshots the event list mid-run (copy-on-read in Events), so shared
	// references would race.
	if len(e.Args) > 0 {
		args := make(map[string]any, len(e.Args))
		for k, v := range e.Args {
			args[k] = v
		}
		e.Args = args
	}
	t.mu.Lock()
	e.seq = len(t.events)
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Complete records a span of the given duration starting at start.
func (t *Tracer) Complete(cat, name string, tid int, start, dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.append(Event{Name: name, Cat: cat, Phase: PhaseComplete,
		TsUS: usOf(start), DurUS: usOf(dur), PID: 1, TID: tid, Args: args})
}

// Instant records a point event at the given time.
func (t *Tracer) Instant(cat, name string, tid int, at time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.append(Event{Name: name, Cat: cat, Phase: PhaseInstant,
		TsUS: usOf(at), PID: 1, TID: tid, Scope: "t", Args: args})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a deterministic copy of the recorded events: sorted by
// track, then timestamp, with emission order breaking ties. Concurrent
// tracks (cluster nodes) append in scheduler order, so sorting is what makes
// the export reproducible for a fixed seed.
//
// Events is a copy-on-read snapshot: it can be called at any point during a
// run, concurrently with emitters, and the returned slice is independent of
// later appends (the tracer deep-copies args at emission time, so no event
// shares mutable state with the emitting goroutine). This is what lets the
// telemetry server stream /runs/{id}/trace mid-run without racing the
// executor.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TID != out[j].TID {
			return out[i].TID < out[j].TID
		}
		if out[i].TsUS != out[j].TsUS {
			return out[i].TsUS < out[j].TsUS
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// chromeTrace is the JSON object trace format (the one Perfetto's legacy
// importer and chrome://tracing load directly).
type chromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteChromeTrace writes events as a Chrome trace_event JSON document.
func WriteChromeTrace(w io.Writer, events []Event) error {
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteTrace writes the tracer's events as Chrome trace_event JSON.
func (t *Tracer) WriteTrace(w io.Writer) error { return WriteChromeTrace(w, t.Events()) }

// ReadChromeTrace decodes a Chrome trace_event JSON document written by
// WriteChromeTrace (the round-trip decoder the export tests rely on).
func ReadChromeTrace(r io.Reader) ([]Event, error) {
	var ct chromeTrace
	if err := json.NewDecoder(r).Decode(&ct); err != nil {
		return nil, fmt.Errorf("obs: decode chrome trace: %w", err)
	}
	for i, e := range ct.TraceEvents {
		if e.Phase == "" {
			return nil, fmt.Errorf("obs: event %d (%q) has no phase", i, e.Name)
		}
	}
	return ct.TraceEvents, nil
}
