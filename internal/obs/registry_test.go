package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.")
	c.Inc()
	c.Add(2.5)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Name != "requests_total" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := snap[0].Series[0].Value; got != 3.5 {
		t.Fatalf("value = %g, want 3.5", got)
	}
	if snap[0].Kind != "counter" {
		t.Fatalf("kind = %q", snap[0].Kind)
	}
}

func TestCounterLabels(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.", "outcome")
	c.Inc("completed")
	c.Inc("completed")
	c.Inc("dropped")
	snap := r.Snapshot()
	s := snap[0].Series
	if len(s) != 2 {
		t.Fatalf("series = %d, want 2", len(s))
	}
	// Sorted by label value: completed before dropped.
	if s[0].LabelValues[0] != "completed" || s[0].Value != 2 {
		t.Fatalf("series[0] = %+v", s[0])
	}
	if s[1].LabelValues[0] != "dropped" || s[1].Value != 1 {
		t.Fatalf("series[1] = %+v", s[1])
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp_c", "Temperature.")
	g.Set(42)
	g.Add(-2)
	if v := r.Snapshot()[0].Series[0].Value; v != 40 {
		t.Fatalf("gauge = %g, want 40", v)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_s", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := r.Snapshot()[0].Series[0]
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Sum != 55.55 {
		t.Fatalf("sum = %g, want 55.55", s.Sum)
	}
	want := []uint64{1, 1, 1, 1} // one per bucket incl +Inf
	for i, c := range s.BucketCounts {
		if c != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, c, want[i])
		}
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	r.Histogram("d", "Default buckets.", nil)
	if got := len(r.Snapshot()[0].Buckets); got != len(DefBuckets) {
		t.Fatalf("buckets = %d, want %d", got, len(DefBuckets))
	}
}

func TestNilRegistryAndZeroHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	// All must no-op without panicking.
	c.Inc()
	c.Add(1, "extra")
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %+v", snap)
	}
}

func TestSchemaConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "as counter")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind must panic")
		}
	}()
	r.Gauge("m", "as gauge")
}

func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("m", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity must panic")
		}
	}()
	c.Inc("only-one")
}

func TestConcurrentCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "", "worker")
	h := r.Histogram("hist", "", []float64{10, 20})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%2))
			for i := 0; i < per; i++ {
				c.Inc(lbl)
				h.Observe(float64(i % 30))
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	for _, s := range r.Snapshot() {
		if s.Name == "n" {
			total = s.Total()
		}
		if s.Name == "hist" && s.Series[0].Count != workers*per {
			t.Fatalf("histogram count = %d, want %d", s.Series[0].Count, workers*per)
		}
	}
	if total != workers*per {
		t.Fatalf("counter total = %g, want %d", total, workers*per)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		// Registration and label-touch order deliberately scrambled.
		r.Counter("b_total", "").Inc()
		c := r.Counter("a_total", "", "k")
		c.Inc("z")
		c.Inc("a")
		return r
	}
	s1, s2 := mk().Snapshot(), mk().Snapshot()
	if s1[0].Name != "a_total" || s2[0].Name != "a_total" {
		t.Fatalf("families not sorted: %q / %q", s1[0].Name, s2[0].Name)
	}
	if s1[0].Series[0].LabelValues[0] != "a" {
		t.Fatalf("series not sorted: %+v", s1[0].Series)
	}
}

func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_windows_total", "Windows.", "controller").Inc(`quo"ted\label`)
	r.Gauge("temp_c", "Temp.").Set(41.5)
	h := r.Histogram("power_w", "Power.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(99)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE sim_windows_total counter",
		`sim_windows_total{controller="quo\"ted\\label"} 1`,
		"temp_c 41.5",
		`power_w_bucket{le="+Inf"} 2`,
		"power_w_sum 99.5",
		"power_w_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	fams, err := CheckPrometheusText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exporter output fails its own checker: %v\n%s", err, out)
	}
	if fams != 3 {
		t.Fatalf("families = %d, want 3", fams)
	}
}

func TestMerge(t *testing.T) {
	mk := func(energy float64, obsv []float64) *Registry {
		r := NewRegistry()
		r.Counter("sim_energy_joules_total", "e", "controller").Add(energy, "PL")
		r.Gauge("hw_gpu_level", "g").Set(energy)
		h := r.Histogram("sim_window_power_watts", "p", []float64{1, 4}, "controller")
		for _, v := range obsv {
			h.Observe(v, "PL")
		}
		return r
	}
	dst := mk(10, []float64{0.5})
	dst.Merge(mk(2, []float64{2, 8}))
	dst.Merge(nil) // no-op

	snap := dst.Snapshot()
	byName := map[string]FamilySnapshot{}
	for _, f := range snap {
		byName[f.Name] = f
	}
	if v := byName["sim_energy_joules_total"].Series[0].Value; v != 12 {
		t.Fatalf("merged counter = %g, want 12", v)
	}
	if v := byName["hw_gpu_level"].Series[0].Value; v != 2 {
		t.Fatalf("merged gauge = %g, want src value 2", v)
	}
	h := byName["sim_window_power_watts"].Series[0]
	if h.Count != 3 || h.Sum != 10.5 {
		t.Fatalf("merged histogram count=%d sum=%g, want 3/10.5", h.Count, h.Sum)
	}
	wantBuckets := []uint64{1, 1, 1} // 0.5 -> le=1, 2 -> le=4, 8 -> +Inf
	for i, c := range h.BucketCounts {
		if c != wantBuckets[i] {
			t.Fatalf("merged buckets = %v, want %v", h.BucketCounts, wantBuckets)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("merging conflicting schemas must panic")
		}
	}()
	bad := NewRegistry()
	bad.Gauge("sim_energy_joules_total", "now a gauge", "controller")
	dst.Merge(bad)
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help").Add(7)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snaps []FamilySnapshot
	if err := json.Unmarshal([]byte(sb.String()), &snaps); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(snaps) != 1 || snaps[0].Series[0].Value != 7 {
		t.Fatalf("decoded = %+v", snaps)
	}
}

func TestCheckPrometheusTextRejects(t *testing.T) {
	cases := map[string]string{
		"undeclared sample": "foo_total 1\n",
		"bad type":          "# TYPE x zebra\nx 1\n",
		"bad value":         "# TYPE x counter\nx banana\n",
		"bad name":          "# TYPE x counter\n1x 2\n",
		"unterminated":      "# TYPE x counter\nx{a=\"b\" 1\n",
		"malformed comment": "# NOPE x\n",
	}
	for name, doc := range cases {
		if _, err := CheckPrometheusText(strings.NewReader(doc)); err == nil {
			t.Fatalf("%s: accepted %q", name, doc)
		}
	}
}
