package obs

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestSortedOrderMaintainedAtInsert registers families and series in a
// shuffled order and checks snapshots come out sorted — the order is built
// at registration time, not re-derived per scrape.
func TestSortedOrderMaintainedAtInsert(t *testing.T) {
	r := NewRegistry()
	names := []string{"m_delta", "m_alpha", "m_echo", "m_charlie", "m_bravo"}
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	for _, n := range names {
		c := r.Counter(n, "x", "who")
		values := []string{"zed", "ann", "mid"}
		rng.Shuffle(len(values), func(i, j int) { values[i], values[j] = values[j], values[i] })
		for _, v := range values {
			c.Inc(v)
		}
	}
	snap := r.Snapshot()
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name }) {
		t.Fatalf("families not sorted: %v", familyNames(snap))
	}
	for _, f := range snap {
		if !sort.SliceIsSorted(f.Series, func(i, j int) bool {
			return strings.Join(f.Series[i].LabelValues, "\x1f") < strings.Join(f.Series[j].LabelValues, "\x1f")
		}) {
			t.Fatalf("series of %s not sorted", f.Name)
		}
	}
}

func familyNames(fams []FamilySnapshot) []string {
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}

// TestSnapshotIntoMatchesSnapshot checks the pooled scrape path produces the
// same logical content as the deep-copying Snapshot, across kinds, and that
// buffer reuse does not leak state between scrapes of changing registries.
func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(3)
	h := r.Histogram("b_watts", "b", []float64{1, 2}, "ctl")
	h.Observe(0.5, "x")
	h.Observe(5, "x")
	r.Gauge("c_level", "c").Set(7)

	buf := r.SnapshotInto(nil)
	if !snapshotsEqual(buf, r.Snapshot()) {
		t.Fatalf("SnapshotInto != Snapshot:\n%v\nvs\n%v", buf, r.Snapshot())
	}

	// Mutate + grow the registry, then reuse the same buffer: the histogram
	// entry previously at index 1 is now a counter and must not keep stale
	// bucket counts.
	h.Observe(1.5, "x")
	r.Counter("b2_total", "between").Add(9)
	buf = r.SnapshotInto(buf)
	if !snapshotsEqual(buf, r.Snapshot()) {
		t.Fatalf("reused SnapshotInto != Snapshot:\n%v\nvs\n%v", buf, r.Snapshot())
	}
}

// snapshotsEqual compares logical content, normalizing nil vs empty slices
// (SnapshotInto reuses buffers, so empties may be non-nil).
func snapshotsEqual(a, b []FamilySnapshot) bool {
	if len(a) != len(b) {
		return false
	}
	norm := func(f FamilySnapshot) FamilySnapshot {
		if len(f.LabelNames) == 0 {
			f.LabelNames = nil
		}
		if len(f.Buckets) == 0 {
			f.Buckets = nil
		}
		ser := make([]SeriesSnapshot, len(f.Series))
		copy(ser, f.Series)
		for i := range ser {
			if len(ser[i].LabelValues) == 0 {
				ser[i].LabelValues = nil
			}
			if len(ser[i].BucketCounts) == 0 {
				ser[i].BucketCounts = nil
			}
		}
		f.Series = ser
		return f
	}
	for i := range a {
		if !reflect.DeepEqual(norm(a[i]), norm(b[i])) {
			return false
		}
	}
	return true
}

// TestSnapshotIntoNil covers the nil-registry and nil-buffer corners.
func TestSnapshotIntoNil(t *testing.T) {
	var r *Registry
	if got := r.SnapshotInto(nil); len(got) != 0 {
		t.Fatalf("nil registry snapshot = %v", got)
	}
	if got := NewRegistry().SnapshotInto(nil); len(got) != 0 {
		t.Fatalf("empty registry snapshot = %v", got)
	}
}

// BenchmarkSnapshotInto is the scrape-path benchmark backing the /metrics
// handler: with a warm buffer a steady-state scrape performs no family or
// series re-sort and no per-family allocations (allocs/op stays flat as the
// family count grows, unlike Snapshot's O(families+series) allocations).
func BenchmarkSnapshotInto(b *testing.B) {
	r := scrapeRegistry()
	b.Run("Snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Snapshot()
		}
	})
	b.Run("SnapshotInto", func(b *testing.B) {
		buf := r.SnapshotInto(nil) // warm the buffer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = r.SnapshotInto(buf)
		}
	})
}

// TestSnapshotIntoSteadyStateAllocs pins the satellite's claim: a warm
// scrape neither re-sorts nor allocates.
func TestSnapshotIntoSteadyStateAllocs(t *testing.T) {
	r := scrapeRegistry()
	buf := r.SnapshotInto(nil)
	allocs := testing.AllocsPerRun(50, func() {
		buf = r.SnapshotInto(buf)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SnapshotInto allocates %.1f/op, want 0", allocs)
	}
}

// scrapeRegistry models the observe scenario's family mix at scrape time.
func scrapeRegistry() *Registry {
	r := NewRegistry()
	for _, n := range []string{"sim_windows_total", "sim_images_total", "sim_energy_joules_total",
		"governor_decisions_total", "hw_sensor_windows_total", "cloud_jobs_total"} {
		c := r.Counter(n, "bench", "label")
		for _, v := range []string{"PowerLens", "BiM", "Ondemand"} {
			c.Add(12, v)
		}
	}
	h := r.Histogram("sim_window_power_watts", "bench", []float64{1, 2, 4, 8}, "controller")
	for i := 0; i < 32; i++ {
		h.Observe(float64(i%10), "PowerLens")
	}
	return r
}
