package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// stream produces a deterministic mixed-scale workload: latencies around
// milliseconds, energies around joules, plus zeros and a few outliers.
func stream(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vs := make([]float64, n)
	for i := range vs {
		switch rng.Intn(10) {
		case 0:
			vs[i] = 0
		case 1:
			vs[i] = rng.Float64() * 1e4 // outlier
		default:
			vs[i] = 1e-3 * (0.5 + rng.Float64())
		}
	}
	return vs
}

func TestQuantileAccuracy(t *testing.T) {
	vs := stream(20000, 1)
	s := New()
	for _, v := range vs {
		s.Observe(v)
	}
	sorted := append([]float64(nil), vs...)
	sortFloats(sorted)

	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := s.Quantile(p)
		exact := sorted[int(math.Ceil(p*float64(len(sorted))))-1]
		if exact == 0 {
			if got != 0 {
				t.Fatalf("p=%v: got %v, exact 0", p, got)
			}
			continue
		}
		if rel := math.Abs(got-exact) / exact; rel > 0.03 {
			t.Fatalf("p=%v: got %v, exact %v (rel err %.4f > 3%%)", p, got, exact, rel)
		}
	}
	if s.Quantile(0) != s.Min() || s.Quantile(1) != s.Max() {
		t.Fatalf("extreme quantiles must be exact: q0=%v min=%v q1=%v max=%v",
			s.Quantile(0), s.Min(), s.Quantile(1), s.Max())
	}
	if s.Count() != uint64(len(vs)) {
		t.Fatalf("count = %d, want %d", s.Count(), len(vs))
	}
	relSum := math.Abs(s.Sum()-sumFloats(vs)) / sumFloats(vs)
	if relSum > 0.03 {
		t.Fatalf("sum = %v, exact %v (rel err %.4f)", s.Sum(), sumFloats(vs), relSum)
	}
}

func sortFloats(vs []float64) { sort.Float64s(vs) }

func sumFloats(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// TestMergePartitionIndependence is the determinism core: splitting one
// stream across any number of concurrent workers and merging in worker order
// must yield byte-identical encodings. Run with -race.
func TestMergePartitionIndependence(t *testing.T) {
	vs := stream(8000, 2)
	var want []byte
	for _, workers := range []int{1, 2, 3, 4, 8, 16} {
		parts := make([]*Sketch, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			parts[w] = New()
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(vs); i += workers {
					parts[w].Observe(vs[i])
				}
			}(w)
		}
		wg.Wait()
		merged := New()
		for _, p := range parts {
			merged.Merge(p)
		}
		enc := merged.EncodeBinary()
		if want == nil {
			want = enc
			continue
		}
		if !bytes.Equal(enc, want) {
			t.Fatalf("%d workers: encoding differs from 1 worker", workers)
		}
	}
}

// TestMergeOrderIndependence pins commutativity: merging shards in reverse
// order produces the same bytes.
func TestMergeOrderIndependence(t *testing.T) {
	vs := stream(4000, 3)
	shards := make([]*Sketch, 5)
	for i := range shards {
		shards[i] = New()
	}
	for i, v := range vs {
		shards[i%len(shards)].Observe(v)
	}
	fwd, rev := New(), New()
	for i := range shards {
		fwd.Merge(shards[i])
		rev.Merge(shards[len(shards)-1-i])
	}
	if !bytes.Equal(fwd.EncodeBinary(), rev.EncodeBinary()) {
		t.Fatal("merge order changed the encoding")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := New()
	for _, v := range stream(3000, 4) {
		s.Observe(v)
	}
	enc := s.EncodeBinary()
	d, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.EncodeBinary(), enc) {
		t.Fatal("decode->encode is not the identity")
	}
	if d.Count() != s.Count() || d.Min() != s.Min() || d.Max() != s.Max() {
		t.Fatalf("decoded aggregates differ: %d/%v/%v vs %d/%v/%v",
			d.Count(), d.Min(), d.Max(), s.Count(), s.Min(), s.Max())
	}
	for _, p := range Quantiles {
		if d.Quantile(p) != s.Quantile(p) {
			t.Fatalf("q%v differs after round trip", p)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := New()
	for _, v := range stream(100, 5) {
		s.Observe(v)
	}
	good := s.EncodeBinary()

	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:headerLen-1],
		"truncated": good[:len(good)-3],
		"magic":     append([]byte("XXXX"), good[4:]...),
		"version":   append(append([]byte(magic), 99), good[5:]...),
	}
	// Corrupt a bucket count so the total disagrees with the header.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	cases["count-mismatch"] = bad

	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Fatalf("%s: Decode accepted corrupt payload", name)
		}
	}
	if _, err := Decode(good); err != nil {
		t.Fatalf("control: Decode rejected valid payload: %v", err)
	}
}

func TestEmptyAndNil(t *testing.T) {
	var nilS *Sketch
	nilS.Observe(1)
	nilS.Merge(New())
	nilS.Reset()
	if nilS.Count() != 0 || nilS.Sum() != 0 || nilS.Quantile(0.5) != 0 ||
		nilS.Min() != 0 || nilS.Max() != 0 {
		t.Fatal("nil sketch queries must all be zero")
	}

	empty := New()
	if empty.Quantile(0.5) != 0 || empty.Sum() != 0 {
		t.Fatal("empty sketch queries must be zero")
	}
	d, err := Decode(empty.EncodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != 0 {
		t.Fatal("decoded empty sketch not empty")
	}
	if !bytes.Equal(nilS.EncodeBinary(), empty.EncodeBinary()) {
		t.Fatal("nil and empty sketches must encode identically")
	}
}

func TestZerosAndClamping(t *testing.T) {
	s := New()
	s.Observe(0)
	s.Observe(-5)
	s.Observe(math.NaN())
	s.Observe(math.Inf(1))
	s.Observe(2)
	if s.Count() != 5 {
		t.Fatalf("count = %d, want 5", s.Count())
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("median of {0,0,0,0,2} = %v, want 0", q)
	}
	if s.Max() != 2 || s.Min() != 0 {
		t.Fatalf("min/max = %v/%v, want 0/2", s.Min(), s.Max())
	}
}

func TestResetReuses(t *testing.T) {
	s := New()
	for _, v := range stream(500, 6) {
		s.Observe(v)
	}
	s.Reset()
	if s.Count() != 0 || s.Sum() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("reset left state behind")
	}
	for _, v := range stream(500, 7) {
		s.Observe(v)
	}
	fresh := New()
	for _, v := range stream(500, 7) {
		fresh.Observe(v)
	}
	if !bytes.Equal(s.EncodeBinary(), fresh.EncodeBinary()) {
		t.Fatal("reused sketch differs from fresh sketch")
	}
}

func TestQuantileMonotone(t *testing.T) {
	s := New()
	for _, v := range stream(2000, 8) {
		s.Observe(v)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := s.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%v: %v < %v", p, q, prev)
		}
		prev = q
	}
}

func TestBucketOrderMatchesValueOrder(t *testing.T) {
	vs := []float64{1e-9, 3e-4, 0.001, 0.0011, 0.5, 1, 1.03, 2, 1000, 1e12}
	for i := 0; i+1 < len(vs); i++ {
		if bucketIndex(vs[i]) > bucketIndex(vs[i+1]) {
			t.Fatalf("bucket order broken: %v -> %d, %v -> %d",
				vs[i], bucketIndex(vs[i]), vs[i+1], bucketIndex(vs[i+1]))
		}
	}
	for _, v := range vs {
		idx := bucketIndex(v)
		lo, hi := bucketLow(idx), bucketLow(idx+1)
		if v < lo || v >= hi {
			t.Fatalf("%v outside its bucket [%v, %v)", v, lo, hi)
		}
		if mid := bucketMid(idx); mid <= lo || mid >= hi {
			t.Fatalf("midpoint %v outside bucket (%v, %v)", mid, lo, hi)
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	s := New()
	vs := stream(1024, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(vs[i&1023])
	}
}

func BenchmarkMerge(b *testing.B) {
	shards := make([]*Sketch, 16)
	for i := range shards {
		shards[i] = New()
		for _, v := range stream(2000, int64(i)) {
			shards[i].Observe(v)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New()
		for _, s := range shards {
			m.Merge(s)
		}
	}
}

func TestQuantileEmptySketch(t *testing.T) {
	s := New()
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		if q := s.Quantile(p); q != 0 {
			t.Fatalf("empty sketch Quantile(%v) = %v, want 0", p, q)
		}
	}
	var nilS *Sketch
	if q := nilS.Quantile(0.5); q != 0 {
		t.Fatalf("nil sketch Quantile = %v, want 0", q)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	s := New()
	s.Observe(3.5)
	if got := s.Quantile(0); got != 3.5 {
		t.Fatalf("Quantile(0) = %v, want exact min 3.5", got)
	}
	if got := s.Quantile(1); got != 3.5 {
		t.Fatalf("Quantile(1) = %v, want exact max 3.5", got)
	}
	for _, p := range []float64{0.01, 0.5, 0.99} {
		got := s.Quantile(p)
		if rel := math.Abs(got-3.5) / 3.5; rel > 0.025 {
			t.Fatalf("Quantile(%v) = %v, want within one bucket of 3.5", p, got)
		}
	}
}

func TestQuantileClamping(t *testing.T) {
	s := New()
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	// p outside [0, 1] clamps to the exact extremes.
	if got := s.Quantile(-0.5); got != 1 {
		t.Fatalf("Quantile(-0.5) = %v, want exact min 1", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want exact min 1", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("Quantile(1) = %v, want exact max 100", got)
	}
	if got := s.Quantile(1.5); got != 100 {
		t.Fatalf("Quantile(1.5) = %v, want exact max 100", got)
	}
	// Interior quantiles stay within the bucketed error bound and ordered.
	prev := 0.0
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := s.Quantile(p)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v below previous %v", p, got, prev)
		}
		prev = got
	}
}

func TestBucketsAndZeros(t *testing.T) {
	var nilS *Sketch
	if nilS.Buckets() != nil || nilS.Zeros() != 0 {
		t.Fatal("nil sketch must report no buckets and no zeros")
	}
	s := New()
	if s.Buckets() != nil {
		t.Fatal("empty sketch must report no buckets")
	}
	s.Observe(0)
	s.Observe(-4) // clamps to zero
	s.Observe(2)
	s.Observe(2)
	s.Observe(8)
	if got := s.Zeros(); got != 2 {
		t.Fatalf("Zeros = %d, want 2", got)
	}
	bs := s.Buckets()
	if len(bs) != 2 {
		t.Fatalf("Buckets = %+v, want 2 entries", bs)
	}
	if bs[0].Index >= bs[1].Index {
		t.Fatalf("buckets not ascending: %+v", bs)
	}
	if bs[0].Count != 2 || bs[1].Count != 1 {
		t.Fatalf("bucket counts %+v, want 2 then 1", bs)
	}
	var total uint64
	for _, b := range bs {
		total += b.Count
	}
	if total+s.Zeros() != s.Count() {
		t.Fatalf("bucket counts %d + zeros %d != n %d", total, s.Zeros(), s.Count())
	}
}
