// Package sketch implements a deterministic, mergeable streaming quantile
// sketch over non-negative float64 observations.
//
// The sketch is log-bucketed: each positive value is assigned to a bucket
// derived purely from its IEEE-754 bit pattern (binary exponent plus the top
// subBits mantissa bits), so bucketing involves no transcendental math and is
// exactly reproducible across machines, runs, and merge orders. With
// subBits = 5 every binary octave is split into 32 sub-buckets, bounding the
// relative quantile error at ~2.2% (one bucket width).
//
// Determinism is the design center, not an afterthought:
//
//   - All mergeable state is integer bucket counts plus commutative min/max,
//     so Merge is associative and commutative: splitting a stream across any
//     number of workers or dispatch shards and merging the pieces in any
//     order yields the same sketch, bit for bit.
//   - Sum() is *derived* from the bucket counts (count x bucket midpoint,
//     accumulated in ascending bucket order) rather than accumulated from raw
//     values, so it cannot depend on observation partitioning either.
//   - AppendBinary emits buckets in ascending index order with fixed-width
//     big-endian fields, making the encoding byte-stable: equal sketches
//     always encode to equal bytes.
//
// The zero value is not ready for use; call New. A nil *Sketch is a valid
// no-op sink: Observe does nothing and every query returns zero.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// subBits is the number of mantissa bits used to subdivide each binary
// octave. 5 bits = 32 sub-buckets per octave.
const subBits = 5

// Encoding constants. The magic/version prefix lets Decode reject foreign or
// stale payloads instead of misreading them.
const (
	magic   = "PLQS" // PowerLens Quantile Sketch
	version = 1

	headerLen = len(magic) + 1 + 8 + 8 + 8 + 8 + 4 // magic ver n zeros minBits maxBits nbuckets
	bucketLen = 4 + 8                              // index, count
)

// Quantiles is the fixed probe set used by exporters (Prometheus summaries,
// ledger snapshots). Keeping it package-level ensures every export surface
// agrees on the same points.
var Quantiles = [3]float64{0.5, 0.9, 0.99}

// Sketch accumulates non-negative observations. Not safe for concurrent use;
// callers own synchronization (the obs Registry and the attribution ledger
// both guard sketches with their own locks).
type Sketch struct {
	counts map[uint32]uint64
	n      uint64 // total observations, including zeros
	zeros  uint64 // observations of exactly 0 (no log bucket exists for them)
	min    float64
	max    float64

	// sorted caches the ascending bucket indexes; rebuilt lazily so that
	// steady-state Quantile/encode calls on an unchanged sketch do not
	// allocate or sort.
	sorted []uint32
	dirty  bool
}

// New returns an empty sketch.
func New() *Sketch {
	return &Sketch{counts: make(map[uint32]uint64)}
}

// bucketIndex maps a positive, finite float64 to its bucket. The index packs
// the raw IEEE exponent above the top subBits mantissa bits, so index order
// equals value order.
func bucketIndex(v float64) uint32 {
	bits := math.Float64bits(v)
	exp := uint32(bits >> 52 & 0x7ff)
	sub := uint32(bits >> (52 - subBits) & (1<<subBits - 1))
	return exp<<subBits | sub
}

// bucketLow returns the inclusive lower bound of a bucket.
func bucketLow(idx uint32) float64 {
	exp := uint64(idx >> subBits)
	sub := uint64(idx & (1<<subBits - 1))
	return math.Float64frombits(exp<<52 | sub<<(52-subBits))
}

// bucketMid returns the bucket's representative value: the arithmetic
// midpoint of its bounds. Pure float arithmetic on reconstructed bounds, so
// it is a deterministic function of the index alone.
func bucketMid(idx uint32) float64 {
	lo := bucketLow(idx)
	hi := bucketLow(idx + 1)
	return lo + (hi-lo)/2
}

// Observe records one value. Negative, NaN and +Inf values are clamped to 0
// (the sketch tracks physical quantities — latencies, joules — where those
// can only arise from upstream bugs; counting them at zero keeps n honest
// without poisoning the buckets).
func (s *Sketch) Observe(v float64) {
	if s == nil {
		return
	}
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	if v == 0 {
		s.zeros++
		return
	}
	idx := bucketIndex(v)
	if _, ok := s.counts[idx]; !ok {
		s.dirty = true
	}
	s.counts[idx]++
}

// Merge folds src into s. Merge is associative and commutative; src is left
// untouched. Merging a nil or empty src is a no-op.
func (s *Sketch) Merge(src *Sketch) {
	if s == nil || src == nil || src.n == 0 {
		return
	}
	if s.n == 0 || src.min < s.min {
		s.min = src.min
	}
	if s.n == 0 || src.max > s.max {
		s.max = src.max
	}
	s.n += src.n
	s.zeros += src.zeros
	for idx, c := range src.counts {
		if _, ok := s.counts[idx]; !ok {
			s.dirty = true
		}
		s.counts[idx] += c
	}
}

// Reset returns the sketch to empty while keeping its allocations.
func (s *Sketch) Reset() {
	if s == nil {
		return
	}
	clear(s.counts)
	s.n, s.zeros = 0, 0
	s.min, s.max = 0, 0
	s.sorted = s.sorted[:0]
	s.dirty = false
}

// Count reports the number of observations.
func (s *Sketch) Count() uint64 {
	if s == nil {
		return 0
	}
	return s.n
}

// Min reports the smallest observation (exact, not bucketed); 0 when empty.
func (s *Sketch) Min() float64 {
	if s == nil {
		return 0
	}
	return s.min
}

// Max reports the largest observation (exact, not bucketed); 0 when empty.
func (s *Sketch) Max() float64 {
	if s == nil {
		return 0
	}
	return s.max
}

// Sum reports the approximate sum of all observations, derived from bucket
// counts in ascending bucket order. Because it never touches raw values it is
// independent of how observations were partitioned before merging.
func (s *Sketch) Sum() float64 {
	if s == nil || s.n == 0 {
		return 0
	}
	var sum float64
	for _, idx := range s.sortedIndexes() {
		sum += float64(s.counts[idx]) * bucketMid(idx)
	}
	return sum
}

// Quantile returns an estimate of the p-quantile (p in [0, 1]) using the
// nearest-rank rule over bucket midpoints. The extremes are exact: p <= 0
// returns Min and p >= 1 returns Max. Returns 0 on an empty sketch.
func (s *Sketch) Quantile(p float64) float64 {
	if s == nil || s.n == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 1 {
		return s.max
	}
	// Nearest-rank: the smallest value whose cumulative count reaches
	// ceil(p*n), with rank at least 1.
	rank := uint64(math.Ceil(p * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank <= s.zeros {
		return 0
	}
	cum := s.zeros
	for _, idx := range s.sortedIndexes() {
		cum += s.counts[idx]
		if cum >= rank {
			return bucketMid(idx)
		}
	}
	return s.max
}

// BucketCount is one occupied log bucket and its observation count, as
// returned by Buckets.
type BucketCount struct {
	Index uint32
	Count uint64
}

// BucketValue returns the representative (midpoint) value of a bucket index —
// the same value Quantile reports for observations landing in that bucket.
// It is a pure function of the index, so derived statistics (histogram
// re-binning, divergence scores) are deterministic across runs and merges.
func BucketValue(index uint32) float64 { return bucketMid(index) }

// Buckets returns the occupied log buckets in ascending index order. Zero
// observations are not bucketed (see Zeros). The slice is freshly allocated;
// callers may keep it.
func (s *Sketch) Buckets() []BucketCount {
	if s == nil || len(s.counts) == 0 {
		return nil
	}
	out := make([]BucketCount, 0, len(s.counts))
	for _, idx := range s.sortedIndexes() {
		out = append(out, BucketCount{Index: idx, Count: s.counts[idx]})
	}
	return out
}

// Zeros reports the number of observations of exactly zero (including
// clamped negative/NaN/Inf inputs), which occupy no log bucket.
func (s *Sketch) Zeros() uint64 {
	if s == nil {
		return 0
	}
	return s.zeros
}

// sortedIndexes returns the bucket indexes in ascending order, rebuilding the
// cache only after inserts introduced a new bucket.
func (s *Sketch) sortedIndexes() []uint32 {
	if s.dirty || len(s.sorted) != len(s.counts) {
		s.sorted = s.sorted[:0]
		for idx := range s.counts {
			s.sorted = append(s.sorted, idx)
		}
		sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
		s.dirty = false
	}
	return s.sorted
}

// AppendBinary appends the byte-stable encoding of s to b and returns the
// extended slice. Equal sketches encode to equal bytes regardless of the
// order observations or merges happened in.
func (s *Sketch) AppendBinary(b []byte) []byte {
	var n, zeros uint64
	var minBits, maxBits uint64
	var idxs []uint32
	if s != nil {
		n, zeros = s.n, s.zeros
		minBits = math.Float64bits(s.min)
		maxBits = math.Float64bits(s.max)
		idxs = s.sortedIndexes()
	}
	b = append(b, magic...)
	b = append(b, version)
	b = binary.BigEndian.AppendUint64(b, n)
	b = binary.BigEndian.AppendUint64(b, zeros)
	b = binary.BigEndian.AppendUint64(b, minBits)
	b = binary.BigEndian.AppendUint64(b, maxBits)
	b = binary.BigEndian.AppendUint32(b, uint32(len(idxs)))
	for _, idx := range idxs {
		b = binary.BigEndian.AppendUint32(b, idx)
		b = binary.BigEndian.AppendUint64(b, s.counts[idx])
	}
	return b
}

// EncodeBinary returns the byte-stable encoding of s.
func (s *Sketch) EncodeBinary() []byte {
	size := headerLen
	if s != nil {
		size += len(s.counts) * bucketLen
	}
	return s.AppendBinary(make([]byte, 0, size))
}

// Decode parses an encoding produced by AppendBinary/EncodeBinary. It
// validates the magic, version, framing, bucket ordering and counts, so a
// truncated or corrupted payload returns an error rather than a bogus sketch.
func Decode(b []byte) (*Sketch, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("sketch: payload too short: %d bytes", len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("sketch: bad magic %q", b[:len(magic)])
	}
	if v := b[len(magic)]; v != version {
		return nil, fmt.Errorf("sketch: unsupported version %d", v)
	}
	p := b[len(magic)+1:]
	n := binary.BigEndian.Uint64(p[0:])
	zeros := binary.BigEndian.Uint64(p[8:])
	min := math.Float64frombits(binary.BigEndian.Uint64(p[16:]))
	max := math.Float64frombits(binary.BigEndian.Uint64(p[24:]))
	nb := binary.BigEndian.Uint32(p[32:])
	p = p[36:]
	if uint64(len(p)) != uint64(nb)*bucketLen {
		return nil, fmt.Errorf("sketch: want %d bucket bytes, have %d", uint64(nb)*bucketLen, len(p))
	}
	s := New()
	s.n, s.zeros, s.min, s.max = n, zeros, min, max
	var total uint64 = zeros
	var prev uint32
	for i := uint32(0); i < nb; i++ {
		idx := binary.BigEndian.Uint32(p[0:])
		c := binary.BigEndian.Uint64(p[4:])
		p = p[bucketLen:]
		if i > 0 && idx <= prev {
			return nil, fmt.Errorf("sketch: bucket indexes not strictly ascending at %d", idx)
		}
		if c == 0 {
			return nil, fmt.Errorf("sketch: zero count for bucket %d", idx)
		}
		prev = idx
		s.counts[idx] = c
		total += c
	}
	if total != n {
		return nil, fmt.Errorf("sketch: bucket counts sum to %d, header says %d", total, n)
	}
	s.dirty = true
	return s, nil
}
