package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"powerlens/internal/obs"
)

// A client that opens a connection and never completes its request headers
// must not block graceful shutdown: ReadHeaderTimeout reaps it, and
// Shutdown returns well within its context budget.
func TestShutdownNotWedgedByHungClient(t *testing.T) {
	s := New(obs.New(), nil)
	s.ReadHeaderTimeout = 100 * time.Millisecond
	running, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Hung client: partial request head, then silence with the socket open.
	conn, err := net.Dial("tcp", running.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}

	// A well-behaved request still works while the hung one idles.
	resp, err := http.Get(running.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	if err := running.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Shutdown took %v; hung client wedged the drain", elapsed)
	}
}

// Shutdown past its deadline must fall back to Close instead of hanging.
func TestShutdownDeadlineForcesClose(t *testing.T) {
	s := New(obs.New(), nil)
	// Generous header timeout so the hung connection outlives the shutdown
	// context and forces the fallback path.
	s.ReadHeaderTimeout = time.Minute
	running, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", running.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	// Give the server a beat to accept the connection so Shutdown has
	// something to wait on.
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = running.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown returned nil despite an open hung connection")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Shutdown fallback took %v", elapsed)
	}
}
