// Package serve is the live telemetry plane: a stdlib-only net/http server
// over the obs observability core. It exposes the metrics registry as a
// Prometheus scrape target and as JSON, the decision-span tracer as a
// mid-run Chrome trace download, the runlog provenance store as a browsable
// run index, and the standard net/http/pprof profiling endpoints — so a
// running fleet can be watched while it executes instead of only inspected
// from end-of-run file exports.
//
// Endpoints:
//
//	GET /metrics          Prometheus text exposition (version 0.0.4)
//	GET /metrics.json     registry snapshot as JSON family array
//	GET /slo              SLO tracker status: objectives, burn rates, alerts
//	GET /audit            decision-audit snapshot: records, applies, guard
//	                      events, per-model calibration (agreement/regret)
//	GET /drift            feature-drift status: per-dimension PSI scores vs
//	                      the training baseline, alert state
//	GET /healthz          liveness + schema/build info + coarse telemetry counts
//	GET /runs             run-manifest index (runlog store)
//	GET /runs/{id}        one run's manifest
//	GET /runs/{id}/trace  Chrome trace_event JSON; the live tracer when the
//	                      run is still executing, the recorded artifact after
//	GET /debug/pprof/...  standard pprof handlers
//
// The observer source is swappable at runtime (SetObserver), so a scenario
// that builds a fresh observer per platform can keep one server running and
// point it at the currently-executing run.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"powerlens/internal/obs"
	"powerlens/internal/obs/audit"
	"powerlens/internal/obs/runlog"
	"powerlens/internal/obs/slo"
)

// ContentTypePrometheus is the scrape content type for /metrics.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// HealthSchema identifies the /healthz payload layout; bump it when fields
// change meaning so probes can gate on what they are parsing.
const HealthSchema = 1

// Health is the /healthz payload. Status stays the first field and always
// renders ("status": "ok"), so cheap liveness greps keep working.
type Health struct {
	Status         string  `json:"status"`
	Schema         int     `json:"schema"`
	GoVersion      string  `json:"goVersion"`
	UptimeSeconds  float64 `json:"uptimeSeconds"`
	MetricFamilies int     `json:"metricFamilies"`
	TraceEvents    int     `json:"traceEvents"`
	AuditRecords   uint64  `json:"auditRecords,omitempty"`
	Runs           int     `json:"runs,omitempty"`
	LiveRun        string  `json:"liveRun,omitempty"`
}

// Server serves live telemetry for one observer (swappable) and one
// optional run store. Construct with New; the zero value is not usable.
type Server struct {
	src     atomic.Pointer[obs.Observer]
	liveRun atomic.Pointer[string]
	slo     atomic.Pointer[slo.Tracker]
	audit   atomic.Pointer[audit.Recorder]
	runs    *runlog.Store
	started time.Time

	// Connection timeouts applied by Start (zero = the package defaults
	// below). Without them a client that opens a socket and never finishes
	// its request pins a connection forever — and, before graceful shutdown
	// existed here, wedged process exit.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration

	// The scrape path reuses one snapshot buffer and one render buffer so a
	// high-frequency scraper does not churn allocations; scrapeMu serializes
	// concurrent scrapes over them.
	scrapeMu  sync.Mutex
	scrapeBuf []obs.FamilySnapshot
	renderBuf bytes.Buffer
}

// New returns a server reading from o (may be nil until SetObserver) and
// indexing runs from store (may be nil: /runs then answers 404).
func New(o *obs.Observer, store *runlog.Store) *Server {
	s := &Server{runs: store, started: time.Now()}
	s.src.Store(o)
	return s
}

// SetObserver atomically swaps the observer the telemetry endpoints read.
func (s *Server) SetObserver(o *obs.Observer) { s.src.Store(o) }

// SetLiveRun names the run id currently executing against the observer;
// /runs/{id}/trace serves the live tracer for it until the trace artifact
// is recorded.
func (s *Server) SetLiveRun(id string) { s.liveRun.Store(&id) }

// SetSLO atomically swaps the SLO tracker /slo reads; nil detaches it
// (/slo then answers 404).
func (s *Server) SetSLO(t *slo.Tracker) { s.slo.Store(t) }

// SetAudit atomically swaps the audit recorder /audit and /drift read; nil
// detaches it (both then answer 404).
func (s *Server) SetAudit(rec *audit.Recorder) { s.audit.Store(rec) }

func (s *Server) observer() *obs.Observer { return s.src.Load() }

func (s *Server) liveRunID() string {
	if p := s.liveRun.Load(); p != nil {
		return *p
	}
	return ""
}

// Handler returns the telemetry mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /slo", s.handleSLO)
	mux.HandleFunc("GET /audit", s.handleAudit)
	mux.HandleFunc("GET /drift", s.handleDrift)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /runs", s.handleRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("GET /runs/{id}/trace", s.handleRunTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics renders the live registry in the Prometheus text format
// using the pooled SnapshotInto buffer: a steady-state scrape re-sorts
// nothing and allocates (almost) nothing.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	o := s.observer()
	s.scrapeMu.Lock()
	defer s.scrapeMu.Unlock()
	var reg *obs.Registry
	if o != nil {
		reg = o.Metrics
	}
	s.scrapeBuf = reg.SnapshotInto(s.scrapeBuf)
	s.renderBuf.Reset()
	if err := obs.WriteSnapshotPrometheus(&s.renderBuf, s.scrapeBuf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ContentTypePrometheus)
	w.Header().Set("Content-Length", fmt.Sprint(s.renderBuf.Len()))
	w.Write(s.renderBuf.Bytes())
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	var reg *obs.Registry
	if o := s.observer(); o != nil {
		reg = o.Metrics
	}
	// Live telemetry: a cached snapshot is a stale snapshot.
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, reg.Snapshot())
}

// handleSLO serves the SLO tracker's status: per-model objectives with
// multi-window burn rates and alert state. Rendered to a buffer first so an
// encoding failure yields a clean 500 instead of a half-written body.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	t := s.slo.Load()
	if t == nil {
		http.Error(w, "no SLO tracker configured", http.StatusNotFound)
		return
	}
	var buf bytes.Buffer
	if err := t.WriteJSON(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	w.Write(buf.Bytes())
}

// handleAudit serves the decision-audit recorder's deterministic snapshot:
// ring records per track, plan-apply and guard aggregates, per-model
// calibration (agreement ratio, regret quantiles) and, when a drift monitor
// is attached, the drift status inline.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	rec := s.audit.Load()
	if rec == nil {
		http.Error(w, "no audit recorder configured", http.StatusNotFound)
		return
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	w.Write(buf.Bytes())
}

// handleDrift serves the attached drift monitor's status on its own: the
// per-dimension PSI scores against the training baseline and the alert
// state, without the rest of the audit snapshot.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	rec := s.audit.Load()
	if rec == nil || rec.DriftMonitor() == nil {
		http.Error(w, "no drift monitor configured", http.StatusNotFound)
		return
	}
	var buf bytes.Buffer
	if err := rec.DriftMonitor().WriteJSON(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	w.Write(buf.Bytes())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:        "ok",
		Schema:        HealthSchema,
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		LiveRun:       s.liveRunID(),
	}
	if o := s.observer(); o != nil {
		h.MetricFamilies = len(o.Metrics.Snapshot())
		h.TraceEvents = o.Tracer.Len()
	}
	if rec := s.audit.Load(); rec != nil {
		h.AuditRecords = rec.Snapshot().Records
	}
	if s.runs != nil {
		if ms, err := s.runs.List(); err == nil {
			h.Runs = len(ms)
		}
	}
	writeJSON(w, h)
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if s.runs == nil {
		http.Error(w, "no run store configured", http.StatusNotFound)
		return
	}
	ms, err := s.runs.List()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if ms == nil {
		ms = []runlog.Manifest{}
	}
	writeJSON(w, ms)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.runs == nil {
		http.Error(w, "no run store configured", http.StatusNotFound)
		return
	}
	m, err := s.runs.Get(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, m)
}

// handleRunTrace serves a run's Chrome trace: the recorded artifact when the
// run has exported one, otherwise — for the currently-live run — a
// copy-on-read snapshot of the live tracer, so a run can be inspected in
// Perfetto while it is still executing.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.runs != nil {
		if path, err := s.runs.ArtifactPath(id, "trace.json"); err == nil {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+"_trace.json"))
			http.ServeFile(w, r, path)
			return
		}
	}
	o := s.observer()
	if o == nil || id == "" || id != s.liveRunID() {
		http.Error(w, fmt.Sprintf("run %q has no recorded trace and is not live", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+"_trace.json"))
	if err := obs.WriteChromeTrace(w, o.Tracer.Events()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Running is a started server; Close shuts it down.
type Running struct {
	srv  *http.Server
	addr net.Addr
}

// Default connection timeouts. Scrapes and trace downloads are small and
// local; anything slower than these is a hung or hostile peer.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = time.Minute
	DefaultWriteTimeout      = time.Minute
	DefaultIdleTimeout       = 2 * time.Minute
)

func orDefault(d, def time.Duration) time.Duration {
	if d <= 0 {
		return def
	}
	return d
}

// Start listens on addr (":0" picks a free port) and serves the telemetry
// mux in a background goroutine with the server's connection timeouts.
func (s *Server) Start(addr string) (*Running, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: orDefault(s.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		ReadTimeout:       orDefault(s.ReadTimeout, DefaultReadTimeout),
		WriteTimeout:      orDefault(s.WriteTimeout, DefaultWriteTimeout),
		IdleTimeout:       orDefault(s.IdleTimeout, DefaultIdleTimeout),
	}
	go srv.Serve(ln)
	return &Running{srv: srv, addr: ln.Addr()}, nil
}

// Addr returns the bound address.
func (r *Running) Addr() net.Addr { return r.addr }

// URL returns the server's base URL.
func (r *Running) URL() string { return "http://" + r.addr.String() }

// Close stops the server immediately (in-flight scrapes are abandoned —
// telemetry readers retry, they do not need draining).
func (r *Running) Close() error { return r.srv.Close() }

// Shutdown stops accepting new connections and waits for in-flight requests
// to finish, up to ctx's deadline; on expiry it falls back to Close so a
// hung client (half-sent request, stalled read) cannot wedge process exit.
func (r *Running) Shutdown(ctx context.Context) error {
	if err := r.srv.Shutdown(ctx); err != nil {
		cerr := r.srv.Close()
		if cerr != nil && !errors.Is(cerr, http.ErrServerClosed) {
			return fmt.Errorf("serve: shutdown: %w (close: %v)", err, cerr)
		}
		return fmt.Errorf("serve: forced close after shutdown timeout: %w", err)
	}
	return nil
}
