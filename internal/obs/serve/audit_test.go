package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"powerlens/internal/obs/audit"
)

// fixedRecorder builds a deterministic audit recorder covering every snapshot
// section: ring records on two tracks, apply and guard aggregates, a probed
// model with exemplars, and an attached drift monitor with one shifted
// dimension.
func fixedRecorder() *audit.Recorder {
	rec := audit.New(audit.Config{RingSize: 8, Exemplars: 2, ProbeEvery: 2, Seed: 1})
	var at time.Duration
	rec.SetClock(func() time.Duration { at += time.Millisecond; return at })

	base := audit.NewBaseline(2)
	live := [][]float64{{1, 10}, {2, 11}, {1.5, 10.5}, {2.5, 9.5}}
	for i := 0; i < 64; i++ {
		base.Observe([]float64{1 + float64(i%4)*0.5, 9 + float64(i%3)})
	}
	d := audit.NewDrift(base, 0.25)
	d.SetDimNames([]string{"flops", "depth"})
	rec.AttachDrift(d)
	for i := 0; i < 16; i++ {
		d.Observe([]float64{live[i%4][0], 100 + live[i%4][1]}) // dim 1 shifted far out
	}

	for i := 0; i < 4; i++ {
		if rec.RecordDecision(1, "alexnet", 0xabcd, i, 3, 5, 0.25+float64(i)*0.1, []float64{1, 2}) {
			rec.RecordProbe(1, "alexnet", 0xabcd, i, 3, 3, 0.05)
		}
	}
	rec.RecordApply(1, "powerlens", "alexnet", 0xabcd, 0, 0, 3)
	rec.RecordApply(1, "powerlens", "alexnet", 0xabcd, 1, 4, 7)
	rec.RecordGuard(2, "strike", "broken", 3, "invalid-level")
	rec.RecordGuard(2, "failover", "broken", 3, "invalid-level")
	rec.RecordGuard(2, "recovery", "broken", 5, "")
	return rec
}

// responseText renders status line, sorted headers and body — the golden
// format shared with the /metrics and /slo pins.
func responseText(t *testing.T, h http.Handler, path string) (string, []byte) {
	t.Helper()
	rec := get(t, h, path)
	var sb strings.Builder
	res := rec.Result()
	fmt.Fprintf(&sb, "%s %s\n", res.Proto, res.Status)
	keys := make([]string, 0, len(res.Header))
	for k := range res.Header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s: %s\n", k, strings.Join(res.Header[k], ", "))
	}
	sb.WriteString("\n")
	body, _ := io.ReadAll(res.Body)
	sb.Write(body)
	return sb.String(), body
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test -update ./internal/obs/serve` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("response drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestAuditHTTPGolden pins the exact HTTP response bytes of /audit for a
// fixed recorder. A diff means the audit surface drifted — update
// deliberately with `go test -update ./internal/obs/serve`.
func TestAuditHTTPGolden(t *testing.T) {
	s := New(fixedObserver(), nil)
	s.SetAudit(fixedRecorder())
	got, body := responseText(t, s.Handler(), "/audit")
	checkGolden(t, "audit_http.golden", got)

	var snap audit.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/audit body is not a Snapshot: %v", err)
	}
	if snap.Records == 0 || len(snap.Applies) != 2 || len(snap.GuardEvents) != 3 ||
		len(snap.Models) != 1 || snap.Drift == nil {
		t.Fatalf("/audit snapshot incomplete: %+v", snap)
	}
}

// TestDriftHTTPGolden pins /drift: the standalone drift status with the
// shifted dimension alerting.
func TestDriftHTTPGolden(t *testing.T) {
	s := New(fixedObserver(), nil)
	s.SetAudit(fixedRecorder())
	got, body := responseText(t, s.Handler(), "/drift")
	checkGolden(t, "drift_http.golden", got)

	var st audit.DriftStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/drift body is not a DriftStatus: %v", err)
	}
	if !st.Alerting || st.MaxDim != 1 || len(st.Dims) != 2 {
		t.Fatalf("/drift status wrong: %+v", st)
	}
}

// TestHealthzGolden pins the /healthz schema: the volatile fields (uptime,
// toolchain version) are normalized to zero values, the rest must match the
// golden byte for byte — including the always-rendered "status": "ok" that
// liveness greps key on.
func TestHealthzGolden(t *testing.T) {
	s := New(fixedObserver(), nil)
	s.SetAudit(fixedRecorder())
	rec := get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"status": "ok"`) {
		t.Fatalf("/healthz lost the literal status rendering:\n%s", rec.Body.String())
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Schema != HealthSchema || h.GoVersion == "" || h.UptimeSeconds < 0 {
		t.Fatalf("healthz build info wrong: %+v", h)
	}
	h.UptimeSeconds = 0
	h.GoVersion = ""
	norm, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "healthz.golden", string(norm)+"\n")
}

// TestAuditEndpointsDetach pins the 404 contract: both endpoints refuse until
// a recorder is attached, /drift additionally until a monitor is, and
// detaching restores the 404s.
func TestAuditEndpointsDetach(t *testing.T) {
	s := New(nil, nil)
	h := s.Handler()
	for _, path := range []string{"/audit", "/drift"} {
		if rec := get(t, h, path); rec.Code != http.StatusNotFound {
			t.Fatalf("%s without a recorder = %d, want 404", path, rec.Code)
		}
	}
	bare := audit.New(audit.Config{})
	s.SetAudit(bare)
	if rec := get(t, h, "/audit"); rec.Code != http.StatusOK {
		t.Fatalf("/audit with recorder = %d", rec.Code)
	}
	if rec := get(t, h, "/drift"); rec.Code != http.StatusNotFound {
		t.Fatalf("/drift without a monitor = %d, want 404", rec.Code)
	}
	s.SetAudit(nil)
	if rec := get(t, h, "/audit"); rec.Code != http.StatusNotFound {
		t.Fatalf("/audit after detach = %d, want 404", rec.Code)
	}
}
