package serve

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"powerlens/internal/obs"
	"powerlens/internal/obs/runlog"
	"powerlens/internal/obs/slo"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedObserver builds a deterministic observer covering every exporter
// feature, mirroring the obs package's golden registry.
func fixedObserver() *obs.Observer {
	o := obs.New()
	o.Metrics.Counter("sim_energy_joules_total", "Exactly-integrated rail energy.").Add(123.456)
	jobs := o.Metrics.Counter("cloud_jobs_total", "Jobs by outcome.", "outcome")
	jobs.Add(40, "completed")
	jobs.Add(2, "failover")
	o.Metrics.Gauge("hw_gpu_level", "Current GPU ladder level.").Set(7)
	h := o.Metrics.Histogram("sim_window_power_watts", "Window power.", []float64{1, 4, 16}, "controller")
	for _, v := range []float64{0.5, 2, 8, 32} {
		h.Observe(v, "PowerLens")
	}
	o.Tracer.Complete("block", "b0", 1, 0, 2*time.Millisecond, map[string]any{"level": 3})
	o.Tracer.Instant("decision", "d0", 1, time.Millisecond, nil)
	return o
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// TestMetricsHTTPGolden pins the exact HTTP response bytes (status, headers
// and body) of /metrics for a fixed registry, mirroring the obs package's
// Prometheus golden test. A diff means the scrape surface drifted — update
// deliberately with `go test -update ./internal/obs/serve`.
func TestMetricsHTTPGolden(t *testing.T) {
	s := New(fixedObserver(), nil)
	rec := get(t, s.Handler(), "/metrics")

	var sb strings.Builder
	res := rec.Result()
	fmt.Fprintf(&sb, "%s %s\n", res.Proto, res.Status)
	keys := make([]string, 0, len(res.Header))
	for k := range res.Header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s: %s\n", k, strings.Join(res.Header[k], ", "))
	}
	sb.WriteString("\n")
	body, _ := io.ReadAll(res.Body)
	sb.Write(body)
	got := sb.String()

	path := filepath.Join("testdata", "metrics_http.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test -update ./internal/obs/serve` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("/metrics HTTP response drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if fams, err := obs.CheckPrometheusText(strings.NewReader(string(body))); err != nil || fams != 4 {
		t.Fatalf("served body fails the format checker: %d families, %v", fams, err)
	}
}

// fixedTracker builds a deterministic SLO tracker: healthy traffic, then a
// violation burst that trips the latency objective's burn windows.
func fixedTracker() *slo.Tracker {
	tr := slo.New(slo.Config{
		ViolationTarget: 0.1,
		PowerBudgetW:    5,
		Resolution:      100 * time.Millisecond,
		Windows:         []slo.BurnWindow{{Long: 2 * time.Second, Short: 500 * time.Millisecond, Threshold: 5}},
	})
	for at := time.Duration(0); at < 2*time.Second; at += 10 * time.Millisecond {
		tr.RecordPass("alexnet", at, 5*time.Millisecond, 0.01, 0.02, false)
	}
	for at := 2 * time.Second; at < 3*time.Second; at += 10 * time.Millisecond {
		tr.RecordPass("alexnet", at, 20*time.Millisecond, 0.5, 0.02, true)
	}
	return tr
}

// TestSLOHTTPGolden pins the exact HTTP response bytes of /slo for a fixed
// tracker, the same contract as the /metrics golden: a diff means the SLO
// surface drifted. Update deliberately with
// `go test -update ./internal/obs/serve`.
func TestSLOHTTPGolden(t *testing.T) {
	s := New(fixedObserver(), nil)
	s.SetSLO(fixedTracker())
	rec := get(t, s.Handler(), "/slo")

	var sb strings.Builder
	res := rec.Result()
	fmt.Fprintf(&sb, "%s %s\n", res.Proto, res.Status)
	keys := make([]string, 0, len(res.Header))
	for k := range res.Header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s: %s\n", k, strings.Join(res.Header[k], ", "))
	}
	sb.WriteString("\n")
	body, _ := io.ReadAll(res.Body)
	sb.Write(body)
	got := sb.String()

	path := filepath.Join("testdata", "slo_http.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test -update ./internal/obs/serve` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("/slo HTTP response drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	var st slo.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/slo body is not a Status: %v", err)
	}
	if len(st.Models) != 1 || st.Models[0].Model != "alexnet" || !st.Alerting {
		t.Fatalf("/slo status wrong: %+v", st)
	}
}

// TestSLOAndMetricsJSONHeaders pins the cacheability contract of the live
// JSON endpoints, and that /slo answers 404 until a tracker is attached.
func TestSLOAndMetricsJSONHeaders(t *testing.T) {
	s := New(fixedObserver(), nil)
	h := s.Handler()

	if rec := get(t, h, "/slo"); rec.Code != http.StatusNotFound {
		t.Fatalf("/slo without a tracker = %d, want 404", rec.Code)
	}
	s.SetSLO(fixedTracker())
	for _, path := range []string{"/metrics.json", "/slo"} {
		rec := get(t, h, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s Content-Type = %q", path, ct)
		}
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("%s Cache-Control = %q, want no-store", path, cc)
		}
	}
	s.SetSLO(nil)
	if rec := get(t, h, "/slo"); rec.Code != http.StatusNotFound {
		t.Fatalf("/slo after detach = %d, want 404", rec.Code)
	}
}

func TestMetricsJSONAndHealthz(t *testing.T) {
	s := New(fixedObserver(), nil)
	h := s.Handler()

	rec := get(t, h, "/metrics.json")
	var fams []obs.FamilySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &fams); err != nil || len(fams) != 4 {
		t.Fatalf("/metrics.json = %d families, %v", len(fams), err)
	}

	rec = get(t, h, "/healthz")
	var health Health
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.MetricFamilies != 4 || health.TraceEvents != 2 {
		t.Fatalf("healthz = %+v", health)
	}
}

func TestNilObserverEndpointsStillAnswer(t *testing.T) {
	s := New(nil, nil)
	h := s.Handler()
	for _, path := range []string{"/metrics", "/metrics.json", "/healthz"} {
		if rec := get(t, h, path); rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d with nil observer", path, rec.Code)
		}
	}
	if rec := get(t, h, "/runs"); rec.Code != http.StatusNotFound {
		t.Fatalf("/runs without a store = %d, want 404", rec.Code)
	}
}

func TestRunsEndpoints(t *testing.T) {
	store, err := runlog.Open(filepath.Join(t.TempDir(), "runs"))
	if err != nil {
		t.Fatal(err)
	}
	run, err := store.Begin(runlog.Manifest{Scenario: "observe", Platform: "TX2", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	o := fixedObserver()
	s := New(o, store)
	s.SetLiveRun(run.ID())
	h := s.Handler()

	// Index + detail.
	rec := get(t, h, "/runs")
	var ms []runlog.Manifest
	if err := json.Unmarshal(rec.Body.Bytes(), &ms); err != nil || len(ms) != 1 || ms[0].RunID != run.ID() {
		t.Fatalf("/runs = %s (%v)", rec.Body.String(), err)
	}
	rec = get(t, h, "/runs/"+run.ID())
	var m runlog.Manifest
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil || m.Seed != 7 {
		t.Fatalf("/runs/{id} = %s (%v)", rec.Body.String(), err)
	}
	if rec := get(t, h, "/runs/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("missing run = %d, want 404", rec.Code)
	}

	// Mid-run: no artifact yet, the live tracer answers and round-trips.
	rec = get(t, h, "/runs/"+run.ID()+"/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("live trace = %d: %s", rec.Code, rec.Body.String())
	}
	evs, err := obs.ReadChromeTrace(rec.Body)
	if err != nil || len(evs) != 2 {
		t.Fatalf("live trace round-trip: %d events, %v", len(evs), err)
	}

	// After the artifact is recorded it wins over the live tracer.
	if err := run.WriteArtifact("trace.json", func(w io.Writer) error {
		return obs.WriteChromeTrace(w, o.Tracer.Events()[:1])
	}); err != nil {
		t.Fatal(err)
	}
	rec = get(t, h, "/runs/"+run.ID()+"/trace")
	evs, err = obs.ReadChromeTrace(rec.Body)
	if err != nil || len(evs) != 1 {
		t.Fatalf("recorded trace: %d events, %v", len(evs), err)
	}

	// A non-live run without an artifact 404s.
	other, err := store.Begin(runlog.Manifest{Scenario: "observe", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(t, h, "/runs/"+other.ID()+"/trace"); rec.Code != http.StatusNotFound {
		t.Fatalf("non-live traceless run = %d, want 404", rec.Code)
	}
}

// TestConcurrentScrapesDuringRun hammers /metrics and the trace endpoint
// while emitters write — the -race acceptance check for the serving path.
func TestConcurrentScrapesDuringRun(t *testing.T) {
	o := obs.New()
	s := New(o, nil)
	s.SetLiveRun("live")
	h := s.Handler()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := o.Metrics.Counter("sim_windows_total", "w", "controller")
		hist := o.Metrics.Histogram("sim_window_power_watts", "p", []float64{1, 2}, "controller")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc("PowerLens")
			hist.Observe(float64(i%3), "PowerLens")
			o.Tracer.Complete("block", "b", 1, time.Duration(i), 1, map[string]any{"i": i})
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK {
					t.Errorf("/metrics = %d", rec.Code)
					return
				}
				if rec := get(t, h, "/runs/live/trace"); rec.Code != http.StatusOK && s.runs == nil {
					// store is nil: live fallback must still answer
					t.Errorf("/runs/live/trace = %d", rec.Code)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The final scrape parses.
	rec := get(t, h, "/metrics")
	if _, err := obs.CheckPrometheusText(strings.NewReader(rec.Body.String())); err != nil {
		t.Fatalf("post-run scrape invalid: %v", err)
	}
}

func TestSetObserverSwapsSource(t *testing.T) {
	a := obs.New()
	a.Metrics.Counter("a_total", "a").Inc()
	b := obs.New()
	b.Metrics.Counter("b_total", "b").Add(5)

	s := New(a, nil)
	h := s.Handler()
	if body := get(t, h, "/metrics").Body.String(); !strings.Contains(body, "a_total 1") {
		t.Fatalf("first scrape = %q", body)
	}
	s.SetObserver(b)
	body := get(t, h, "/metrics").Body.String()
	if !strings.Contains(body, "b_total 5") || strings.Contains(body, "a_total") {
		t.Fatalf("swapped scrape = %q", body)
	}
}

func TestStartServesOverTCP(t *testing.T) {
	s := New(fixedObserver(), nil)
	run, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()

	res, err := http.Get(run.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP = %d", res.StatusCode)
	}
	res2, err := http.Get(run.URL() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("pprof over TCP = %d", res2.StatusCode)
	}

	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(run.URL() + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
}
