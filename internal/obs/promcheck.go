package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckPrometheusText validates a Prometheus text-exposition document (the
// output of Registry.WritePrometheus): every non-comment line must parse as
// `name{labels} value`, every TYPE comment must name a known metric type, and
// every sample must belong to a declared family. It returns the number of
// declared families. CI uses this (via the golden-file test) to guarantee
// the exporter never drifts out of the format scrapers accept.
func CheckPrometheusText(r io.Reader) (families int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	declared := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return families, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return families, fmt.Errorf("line %d: TYPE wants `# TYPE name kind`", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return families, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				declared[fields[2]] = true
				families++
			}
			continue
		}
		name, rest, perr := parseSampleName(line)
		if perr != nil {
			return families, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if !declared[name] && !declared[base] {
			return families, fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if _, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64); perr != nil {
			return families, fmt.Errorf("line %d: bad sample value %q", lineNo, rest)
		}
	}
	if err := sc.Err(); err != nil {
		return families, err
	}
	return families, nil
}

// parseSampleName splits a sample line into metric name (validating the
// label block if present) and the value text.
func parseSampleName(line string) (name, value string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if line[i] == ' ' {
		return name, line[i+1:], nil
	}
	// Label block: scan to the closing brace, respecting quoted values.
	rest := line[i+1:]
	inQuote, escaped := false, false
	for j := 0; j < len(rest); j++ {
		c := rest[j]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuote:
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return name, rest[j+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label block in %q", line)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
