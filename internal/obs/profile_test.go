package obs

import (
	"testing"
	"time"
)

func TestProfilerRegions(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 3; i++ {
		stop := p.Region("work")
		time.Sleep(time.Millisecond)
		stop()
	}
	snap := p.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("regions = %d, want 1", len(snap))
	}
	r := snap[0]
	if r.Name != "work" || r.Count != 3 {
		t.Fatalf("region = %+v", r)
	}
	if r.Wall < 3*time.Millisecond {
		t.Fatalf("wall = %v, want >= 3ms", r.Wall)
	}
	if r.Mean() < time.Millisecond || r.MaxInterval < time.Millisecond {
		t.Fatalf("mean = %v, max = %v", r.Mean(), r.MaxInterval)
	}
}

func TestProfilerAllocSampling(t *testing.T) {
	p := NewProfiler()
	p.SampleAllocs = true
	stop := p.Region("alloc")
	buf := make([]byte, 1<<20)
	_ = buf[0]
	stop()
	r := p.Snapshot()[0]
	if r.AllocBytes < 1<<20 {
		t.Fatalf("alloc bytes = %d, want >= 1MiB", r.AllocBytes)
	}
	if r.AllocObjs == 0 {
		t.Fatal("alloc objects not counted")
	}
}

func TestProfilerSnapshotSorted(t *testing.T) {
	p := NewProfiler()
	p.Region("zeta")()
	p.Region("alpha")()
	snap := p.Snapshot()
	if snap[0].Name != "alpha" || snap[1].Name != "zeta" {
		t.Fatalf("not sorted: %+v", snap)
	}
}

func TestNilProfiler(t *testing.T) {
	var p *Profiler
	p.Region("x")() // must not panic
	if p.Snapshot() != nil {
		t.Fatal("nil profiler snapshot must be nil")
	}
}

func TestZeroRegionMean(t *testing.T) {
	if (RegionStats{}).Mean() != 0 {
		t.Fatal("zero-count mean must be 0")
	}
}
