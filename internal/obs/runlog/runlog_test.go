package runlog

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "runs"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBeginFinishRoundTrip(t *testing.T) {
	s := testStore(t)
	r, err := s.Begin(Manifest{Scenario: "observe", Platform: "TX2", Seed: 42, ConfigDigest: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID() != "observe-s42-001" {
		t.Fatalf("run id = %q", r.ID())
	}

	// Begin already indexed the run (mid-run visibility).
	ms, err := s.List()
	if err != nil || len(ms) != 1 {
		t.Fatalf("mid-run List = %v, %v", ms, err)
	}
	if ms[0].WallMS != 0 || ms[0].GoVersion == "" || ms[0].HostOS == "" {
		t.Fatalf("initial manifest = %+v", ms[0])
	}

	if err := r.WriteArtifact("trace.json", func(w io.Writer) error {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(1500*time.Millisecond, map[string]float64{"flow_energy_j": 12.5}); err != nil {
		t.Fatal(err)
	}

	m, err := s.Get(r.ID())
	if err != nil {
		t.Fatal(err)
	}
	if m.WallMS != 1500 || m.Metrics["flow_energy_j"] != 12.5 || m.Schema != ManifestSchemaVersion {
		t.Fatalf("final manifest = %+v", m)
	}
	p, err := s.ArtifactPath(r.ID(), "trace.json")
	if err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(p); err != nil || !strings.Contains(string(data), "traceEvents") {
		t.Fatalf("artifact read = %q, %v", data, err)
	}
}

func TestSequenceNumbersAdvance(t *testing.T) {
	s := testStore(t)
	for i, want := range []string{"bench-s1-001", "bench-s1-002", "bench-s1-003"} {
		r, err := s.Begin(Manifest{Scenario: "bench", Seed: 1})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if r.ID() != want {
			t.Fatalf("run %d id = %q, want %q", i, r.ID(), want)
		}
	}
	// A different seed gets its own sequence.
	r, err := s.Begin(Manifest{Scenario: "bench", Seed: 2})
	if err != nil || r.ID() != "bench-s2-001" {
		t.Fatalf("seed-2 id = %q, %v", r.ID(), err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty root accepted")
	}
	// A path under a regular file cannot be created — the unwritable-root
	// error path (robust even as root, unlike permission bits).
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(f, "runs")); err == nil {
		t.Fatal("root under a file accepted")
	}
}

func TestBeginRejectsBadScenario(t *testing.T) {
	s := testStore(t)
	for _, bad := range []string{"", "Observe", "a/b", "a..b", "x y"} {
		if _, err := s.Begin(Manifest{Scenario: bad}); err == nil {
			t.Fatalf("scenario %q accepted", bad)
		}
	}
}

func TestGetRejectsTraversal(t *testing.T) {
	s := testStore(t)
	for _, bad := range []string{"", ".", "..", "../x", "a/b"} {
		if _, err := s.Get(bad); err == nil {
			t.Fatalf("id %q accepted", bad)
		}
	}
}

func TestWriteArtifactRejectsBadNames(t *testing.T) {
	s := testStore(t)
	r, err := s.Begin(Manifest{Scenario: "observe", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "a/b", ManifestName} {
		if err := r.WriteArtifact(bad, func(io.Writer) error { return nil }); err == nil {
			t.Fatalf("artifact name %q accepted", bad)
		}
	}
}

func TestListSkipsForeignDirs(t *testing.T) {
	s := testStore(t)
	if _, err := s.Begin(Manifest{Scenario: "observe", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(s.Root(), "not-a-run"), 0o755); err != nil {
		t.Fatal(err)
	}
	ms, err := s.List()
	if err != nil || len(ms) != 1 {
		t.Fatalf("List = %d manifests, %v; want 1", len(ms), err)
	}
}

func TestValidateRejectsFutureSchema(t *testing.T) {
	m := Manifest{Schema: ManifestSchemaVersion + 1, RunID: "x", Scenario: "observe"}
	if err := m.Validate(); err == nil {
		t.Fatal("future schema accepted")
	}
}

func TestDiff(t *testing.T) {
	a := Manifest{Metrics: map[string]float64{"ee": 2.0, "energy": 10, "gone": 1}}
	b := Manifest{Metrics: map[string]float64{"ee": 2.5, "energy": 10, "new": 3}}
	ds := Diff(a, b)
	byName := map[string]MetricDelta{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	if d := byName["ee"]; d.Pct != 25 {
		t.Fatalf("ee delta = %+v", d)
	}
	if d := byName["energy"]; d.Pct != 0 {
		t.Fatalf("energy delta = %+v", d)
	}
	if !byName["gone"].OnlyA || !byName["new"].OnlyB {
		t.Fatalf("one-sided metrics not flagged: %+v", byName)
	}
	// Sorted by name.
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Name >= ds[i].Name {
			t.Fatalf("deltas not sorted: %v", ds)
		}
	}
}

func TestDigestDeterministic(t *testing.T) {
	type opt struct {
		Tasks int
		Seed  int64
	}
	a, err := Digest(opt{Tasks: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := MustDigest(opt{Tasks: 5, Seed: 1})
	if a != b || len(a) != 16 {
		t.Fatalf("digests %q vs %q", a, b)
	}
	if c := MustDigest(opt{Tasks: 6, Seed: 1}); c == a {
		t.Fatal("different configs collide")
	}
	if _, err := Digest(func() {}); err == nil {
		t.Fatal("unencodable value accepted")
	}
}
