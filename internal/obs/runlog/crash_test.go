package runlog

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"powerlens/internal/checkpoint"
)

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "runs"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func writeBody(body string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, body)
		return err
	}
}

// A manifest torn mid-rewrite must never become visible: the store keeps the
// previous manifest, the index stays consistent, and the next Begin picks
// the next sequence number.
func TestManifestTornWriteInvisible(t *testing.T) {
	s := openStore(t)
	r, err := s.Begin(Manifest{Scenario: "observe", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteArtifact("trace.json", writeBody(`{"events":[]}`)); err != nil {
		t.Fatal(err)
	}

	// Kill the Finish rewrite in elide-rename mode: the temp file is
	// complete but never published.
	s.SetHooks(checkpoint.NewHooks(0, checkpoint.KillElideRename))
	if err := r.Finish(time.Second, map[string]float64{"x": 1}); !errors.Is(err, checkpoint.ErrKilled) {
		t.Fatalf("Finish: err = %v, want ErrKilled", err)
	}
	s.SetHooks(nil)

	m, err := s.Get(r.ID())
	if err != nil {
		t.Fatalf("Get after torn Finish: %v", err)
	}
	if m.WallMS != 0 || len(m.Metrics) != 0 {
		t.Fatalf("torn Finish became visible: %+v", m)
	}
	if _, ok := m.Artifacts["trace.json"]; !ok {
		t.Fatal("previous manifest lost the recorded artifact")
	}

	// The store remains usable: listing sees the run, Begin advances.
	runs, err := s.List()
	if err != nil || len(runs) != 1 {
		t.Fatalf("List = %d runs, err %v", len(runs), err)
	}
	r2, err := s.Begin(Manifest{Scenario: "observe", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r2.ID() == r.ID() {
		t.Fatalf("sequence did not advance: %s", r2.ID())
	}
}

// A manifest that was torn straight onto the final path (non-atomic crash
// shape) must fail Get loudly and be skipped by List, while VerifyRun's IDs
// walk still surfaces the run.
func TestManifestTornOnDiskDetected(t *testing.T) {
	s := openStore(t)
	r, err := s.Begin(Manifest{Scenario: "bench", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	s.SetHooks(checkpoint.NewHooks(0, checkpoint.KillTornWrite))
	if err := r.Finish(time.Second, nil); !errors.Is(err, checkpoint.ErrKilled) {
		t.Fatalf("Finish: err = %v, want ErrKilled", err)
	}
	s.SetHooks(nil)

	if _, err := s.Get(r.ID()); err == nil {
		t.Fatal("Get consumed a torn manifest")
	}
	runs, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("List returned %d runs over a torn manifest", len(runs))
	}
	ids, err := s.IDs()
	if err != nil || len(ids) != 1 {
		t.Fatalf("IDs = %v, err %v; want the torn run visible", ids, err)
	}
	if _, err := s.VerifyRun(ids[0]); err == nil {
		t.Fatal("VerifyRun accepted a torn manifest")
	}
}

// Artifact bit rot must be caught by both ArtifactPath and VerifyRun.
func TestArtifactBitRotDetected(t *testing.T) {
	s := openStore(t)
	r, err := s.Begin(Manifest{Scenario: "observe", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteArtifact("metrics.prom", writeBody("a 1\nb 2\n")); err != nil {
		t.Fatal(err)
	}

	// Pristine: both paths verify clean.
	if _, err := s.ArtifactPath(r.ID(), "metrics.prom"); err != nil {
		t.Fatalf("ArtifactPath pristine: %v", err)
	}
	checks, err := s.VerifyRun(r.ID())
	if err != nil || len(checks) != 1 || !checks[0].OK || checks[0].Unverified {
		t.Fatalf("VerifyRun pristine = %+v, err %v", checks, err)
	}

	// Flip one byte.
	path := filepath.Join(r.Dir(), "metrics.prom")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.ArtifactPath(r.ID(), "metrics.prom"); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("ArtifactPath on rotted artifact: err = %v, want ErrArtifactCorrupt", err)
	}
	checks, err = s.VerifyRun(r.ID())
	if err != nil || len(checks) != 1 {
		t.Fatalf("VerifyRun = %+v, err %v", checks, err)
	}
	if checks[0].OK || checks[0].Problem == "" {
		t.Fatalf("VerifyRun missed the corruption: %+v", checks[0])
	}
}

// Schema-1 manifests (no digests) still load; their artifacts report
// Unverified rather than corrupt.
func TestSchema1ManifestUnverified(t *testing.T) {
	s := openStore(t)
	dir := filepath.Join(s.Root(), "legacy-s1-001")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	manifest := `{"schema":1,"runId":"legacy-s1-001","scenario":"legacy","seed":1,` +
		`"goVersion":"go1.0","hostOs":"linux","hostArch":"amd64","start":"2026-01-01T00:00:00Z",` +
		`"wallMs":1,"artifacts":{"trace.json":"trace.json"}}`
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trace.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Get("legacy-s1-001"); err != nil {
		t.Fatalf("schema-1 manifest rejected: %v", err)
	}
	checks, err := s.VerifyRun("legacy-s1-001")
	if err != nil || len(checks) != 1 {
		t.Fatalf("VerifyRun = %+v, err %v", checks, err)
	}
	if !checks[0].OK || !checks[0].Unverified {
		t.Fatalf("legacy artifact should be OK+Unverified: %+v", checks[0])
	}
}

// Randomized kill/resume: at every possible kill point across the
// Begin → artifacts → Finish sequence, the store is left either consistent
// (previous state intact) or detectably broken (Get fails; never a silently
// wrong manifest).
func TestRunLifecycleKillResumeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	modes := []checkpoint.KillMode{checkpoint.KillBeforeWrite, checkpoint.KillTornWrite, checkpoint.KillElideRename}
	// The lifecycle issues 4 atomic writes: Begin manifest, artifact,
	// manifest update, Finish manifest.
	for failAfter := 0; failAfter < 4; failAfter++ {
		for round := 0; round < 6; round++ {
			mode := modes[rng.Intn(len(modes))]
			t.Run(fmt.Sprintf("kill%d-%s", failAfter, mode), func(t *testing.T) {
				s := openStore(t)
				s.SetHooks(checkpoint.NewHooks(failAfter, mode))
				killed := false
				lifecycle := func() error {
					r, err := s.Begin(Manifest{Scenario: "fuzz", Seed: 9})
					if err != nil {
						return err
					}
					if err := r.WriteArtifact("a.txt", writeBody("payload")); err != nil {
						return err
					}
					return r.Finish(time.Millisecond, map[string]float64{"m": 1})
				}
				if err := lifecycle(); err != nil {
					if !errors.Is(err, checkpoint.ErrKilled) {
						t.Fatalf("lifecycle: %v", err)
					}
					killed = true
				}
				s.SetHooks(nil)

				// Post-crash invariant: every run Get either loads a valid
				// manifest whose digested artifacts verify, or fails loudly.
				ids, err := s.IDs()
				if err != nil {
					t.Fatal(err)
				}
				for _, id := range ids {
					m, err := s.Get(id)
					if err != nil {
						continue // detected breakage is acceptable
					}
					for name := range m.ArtifactDigests {
						if _, err := s.ArtifactPath(id, name); err != nil {
							t.Fatalf("recorded artifact %s/%s unreadable: %v", id, name, err)
						}
					}
				}

				// Resume: a fresh lifecycle must always succeed.
				if err := lifecycle(); err != nil {
					t.Fatalf("post-crash lifecycle: %v", err)
				}
				if !killed && failAfter < 4 {
					_ = killed // all four writes succeeded; nothing to assert
				}
			})
		}
	}
}
