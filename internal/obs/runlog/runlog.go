// Package runlog is the run-provenance store: every experiment run writes a
// schema-versioned manifest (run id, scenario, seed, config digest, Go
// version, platform, wall time, headline metrics) plus its exported
// artifacts (Chrome trace, Prometheus snapshot, ...) into a per-run
// directory under a common root. The telemetry server indexes the root for
// /runs and /runs/{id}, and `powerlens runs list|show|diff` reads it back,
// so a result can always be correlated with the exact configuration that
// produced it.
//
// Run ids are deterministic and human-readable — `<scenario>-s<seed>-NNN`
// with NNN a per-root sequence number — so re-running the same scenario
// never clobbers an earlier run and ids carry their provenance in the name.
package runlog

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"powerlens/internal/checkpoint"
)

// ManifestSchemaVersion is bumped whenever the manifest layout changes
// incompatibly; readers reject manifests from a future schema. Schema 2
// added per-artifact digests; schema-1 manifests (no digests) still load,
// their artifacts just verify as "unverified".
const ManifestSchemaVersion = 2

// ManifestName is the manifest file inside each run directory.
const ManifestName = "manifest.json"

// Manifest is one run's provenance record.
type Manifest struct {
	Schema   int    `json:"schema"`
	RunID    string `json:"runId"`
	Scenario string `json:"scenario"`
	Platform string `json:"platform,omitempty"` // simulated platform (TX2/AGX), not the host
	Seed     int64  `json:"seed"`

	// ConfigDigest fingerprints the full option set (Digest of the options
	// struct), so two runs with the same scenario+seed but different shapes
	// are distinguishable.
	ConfigDigest string `json:"configDigest,omitempty"`

	GoVersion string    `json:"goVersion"`
	HostOS    string    `json:"hostOs"`
	HostArch  string    `json:"hostArch"`
	Start     time.Time `json:"start"`
	WallMS    float64   `json:"wallMs"`

	// Metrics is the headline snapshot recorded at Finish (e.g.
	// sim.Result.Headline / cloud.Result.Headline / registry family totals).
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Artifacts maps logical artifact names ("trace.json", "metrics.prom")
	// to file names inside the run directory.
	Artifacts map[string]string `json:"artifacts,omitempty"`

	// ArtifactDigests records each artifact's CRC32C and size at write time
	// (schema >= 2). ArtifactPath and VerifyRun re-hash the on-disk file
	// against it, so silent artifact corruption or substitution is detected
	// instead of flowing into a diff or a report.
	ArtifactDigests map[string]ArtifactDigest `json:"artifactDigests,omitempty"`
}

// ArtifactDigest pins an artifact's content at the moment it was written.
type ArtifactDigest struct {
	CRC32C uint32 `json:"crc32c"`
	Bytes  int64  `json:"bytes"`
}

// Validate checks the invariants readers rely on.
func (m *Manifest) Validate() error {
	if m.Schema <= 0 || m.Schema > ManifestSchemaVersion {
		return fmt.Errorf("runlog: manifest %q has schema %d, this build reads <= %d",
			m.RunID, m.Schema, ManifestSchemaVersion)
	}
	if m.RunID == "" {
		return errors.New("runlog: manifest has no run id")
	}
	if m.Scenario == "" {
		return fmt.Errorf("runlog: manifest %q has no scenario", m.RunID)
	}
	return nil
}

// Store is a directory of run directories.
type Store struct {
	root  string
	hooks *checkpoint.Hooks
}

// SetHooks installs (or clears) the kill-point injector consulted by every
// subsequent manifest and artifact write. Test-only.
func (s *Store) SetHooks(h *checkpoint.Hooks) { s.hooks = h }

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("runlog: empty store root")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runlog: open store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Run is an in-progress run: a directory plus its manifest. Begin writes the
// manifest immediately (WallMS zero, no metrics) so the run is visible in
// the index while it executes; Finish rewrites it with the final numbers.
type Run struct {
	store    *Store
	dir      string
	Manifest Manifest
}

// Begin creates the next run directory for the scenario and writes the
// initial manifest. The caller fills Scenario, Platform, Seed and
// ConfigDigest; Begin stamps schema, run id, Go version and host platform.
func (s *Store) Begin(m Manifest) (*Run, error) {
	if m.Scenario == "" {
		return nil, errors.New("runlog: Begin without a scenario")
	}
	if !validComponent(m.Scenario) {
		return nil, fmt.Errorf("runlog: scenario %q may only contain [a-z0-9-]", m.Scenario)
	}
	m.Schema = ManifestSchemaVersion
	m.GoVersion = runtime.Version()
	m.HostOS, m.HostArch = runtime.GOOS, runtime.GOARCH
	if m.Start.IsZero() {
		m.Start = time.Now().UTC()
	}

	prefix := fmt.Sprintf("%s-s%d-", m.Scenario, m.Seed)
	seq := 1
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("runlog: scan store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(strings.TrimPrefix(e.Name(), prefix), "%d", &n); err == nil && n >= seq {
			seq = n + 1
		}
	}
	m.RunID = fmt.Sprintf("%s%03d", prefix, seq)

	r := &Run{store: s, dir: filepath.Join(s.root, m.RunID), Manifest: m}
	if err := os.Mkdir(r.dir, 0o755); err != nil {
		return nil, fmt.Errorf("runlog: create run dir: %w", err)
	}
	if err := r.writeManifest(); err != nil {
		return nil, err
	}
	return r, nil
}

// ID returns the run's id.
func (r *Run) ID() string { return r.Manifest.RunID }

// Dir returns the run's directory.
func (r *Run) Dir() string { return r.dir }

// WriteArtifact renders an artifact, writes it atomically into the run
// directory, and records its name and content digest in the manifest. The
// name must be a bare file name (no path separators). A crash between the
// artifact landing and the manifest update leaves an unrecorded file — safe,
// because only manifest-recorded artifacts are ever read back.
func (r *Run) WriteArtifact(name string, write func(io.Writer) error) error {
	if name == "" || name != filepath.Base(name) || name == ManifestName {
		return fmt.Errorf("runlog: invalid artifact name %q", name)
	}
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return fmt.Errorf("runlog: write artifact %s: %w", name, err)
	}
	crc, size, err := checkpoint.AtomicWrite(filepath.Join(r.dir, name), buf.Bytes(), r.store.hooks)
	if err != nil {
		return fmt.Errorf("runlog: write artifact %s: %w", name, err)
	}
	if r.Manifest.Artifacts == nil {
		r.Manifest.Artifacts = map[string]string{}
	}
	r.Manifest.Artifacts[name] = name
	if r.Manifest.ArtifactDigests == nil {
		r.Manifest.ArtifactDigests = map[string]ArtifactDigest{}
	}
	r.Manifest.ArtifactDigests[name] = ArtifactDigest{CRC32C: crc, Bytes: size}
	return r.writeManifest()
}

// Finish records the wall time and headline metrics and rewrites the
// manifest.
func (r *Run) Finish(wall time.Duration, metrics map[string]float64) error {
	r.Manifest.WallMS = float64(wall.Nanoseconds()) / 1e6
	r.Manifest.Metrics = metrics
	return r.writeManifest()
}

func (r *Run) writeManifest() error {
	data, err := json.MarshalIndent(r.Manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("runlog: encode manifest: %w", err)
	}
	// Atomic temp+rename+fsync: a crash mid-write leaves the previous
	// manifest (or none) rather than a torn one.
	if _, _, err := checkpoint.AtomicWrite(filepath.Join(r.dir, ManifestName), append(data, '\n'), r.store.hooks); err != nil {
		return fmt.Errorf("runlog: write manifest: %w", err)
	}
	return nil
}

// List returns every readable manifest under the root, sorted by run id. Run
// directories without a (valid) manifest are skipped, not fatal: the store
// stays usable while a run is mid-Begin or a directory is foreign.
func (s *Store) List() ([]Manifest, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("runlog: list store: %w", err)
	}
	var out []Manifest
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := s.Get(e.Name())
		if err != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RunID < out[j].RunID })
	return out, nil
}

// Get reads one run's manifest by id.
func (s *Store) Get(id string) (Manifest, error) {
	if err := checkID(id); err != nil {
		return Manifest{}, err
	}
	data, err := os.ReadFile(filepath.Join(s.root, id, ManifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("runlog: run %q: %w", id, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("runlog: run %q: bad manifest: %w", id, err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// ErrArtifactCorrupt marks an artifact whose on-disk bytes no longer match
// the digest recorded in its manifest.
var ErrArtifactCorrupt = errors.New("runlog: artifact does not match recorded digest")

// ArtifactPath resolves a recorded artifact to its on-disk path, verifying
// the file against the manifest's recorded digest first (when one exists —
// schema-1 manifests predate digests). A mismatch returns ErrArtifactCorrupt
// rather than handing back a path to corrupt data.
func (s *Store) ArtifactPath(id, name string) (string, error) {
	m, err := s.Get(id)
	if err != nil {
		return "", err
	}
	file, ok := m.Artifacts[name]
	if !ok {
		return "", fmt.Errorf("runlog: run %q has no artifact %q", id, name)
	}
	if file != filepath.Base(file) {
		return "", fmt.Errorf("runlog: run %q artifact %q escapes the run dir", id, name)
	}
	path := filepath.Join(s.root, id, file)
	if want, ok := m.ArtifactDigests[name]; ok {
		if err := verifyArtifact(path, want); err != nil {
			return "", fmt.Errorf("runlog: run %q artifact %q: %w", id, name, err)
		}
	}
	return path, nil
}

func verifyArtifact(path string, want ArtifactDigest) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if int64(len(data)) != want.Bytes || checkpoint.CRC32C(data) != want.CRC32C {
		return fmt.Errorf("%w: %d bytes CRC32C %08x on disk, manifest records %d bytes CRC32C %08x",
			ErrArtifactCorrupt, len(data), checkpoint.CRC32C(data), want.Bytes, want.CRC32C)
	}
	return nil
}

// ArtifactCheck is one artifact's verification result.
type ArtifactCheck struct {
	Name string
	// OK means the on-disk file matches its recorded digest.
	OK bool
	// Unverified means the manifest records no digest for this artifact
	// (written before schema 2); absence of evidence, not corruption.
	Unverified bool
	// Problem describes the failure when OK is false.
	Problem string
}

// VerifyRun re-hashes every artifact of a run against its manifest, sorted
// by artifact name. The error covers manifest-level failures only; per-
// artifact problems land in the checks.
func (s *Store) VerifyRun(id string) ([]ArtifactCheck, error) {
	m, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(m.Artifacts))
	for n := range m.Artifacts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]ArtifactCheck, 0, len(names))
	for _, n := range names {
		c := ArtifactCheck{Name: n}
		file := m.Artifacts[n]
		if file != filepath.Base(file) {
			c.Problem = "artifact path escapes the run dir"
			out = append(out, c)
			continue
		}
		want, has := m.ArtifactDigests[n]
		if !has {
			c.OK, c.Unverified = true, true
			out = append(out, c)
			continue
		}
		if err := verifyArtifact(filepath.Join(s.root, id, file), want); err != nil {
			c.Problem = err.Error()
		} else {
			c.OK = true
		}
		out = append(out, c)
	}
	return out, nil
}

// IDs returns the name of every run directory under the root, sorted,
// whether or not its manifest is readable — unlike List, which skips broken
// runs so the index stays usable. Verification walks IDs so a corrupt
// manifest is surfaced instead of silently dropped.
func (s *Store) IDs() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("runlog: list store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// checkID rejects ids that could escape the store root.
func checkID(id string) error {
	if id == "" || id != filepath.Base(id) || id == "." || id == ".." {
		return fmt.Errorf("runlog: invalid run id %q", id)
	}
	return nil
}

func validComponent(s string) bool {
	for _, c := range s {
		if !(c == '-' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
			return false
		}
	}
	return s != ""
}

// MetricDelta is one metric's change between two manifests.
type MetricDelta struct {
	Name string
	A, B float64
	// Pct is (B-A)/A in percent; NaN-free: zero A with nonzero B reports
	// +100%, equal values 0%.
	Pct          float64
	OnlyA, OnlyB bool
}

// Diff compares the headline metrics of two manifests, sorted by name.
func Diff(a, b Manifest) []MetricDelta {
	names := map[string]bool{}
	for n := range a.Metrics {
		names[n] = true
	}
	for n := range b.Metrics {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	out := make([]MetricDelta, 0, len(sorted))
	for _, n := range sorted {
		va, inA := a.Metrics[n]
		vb, inB := b.Metrics[n]
		d := MetricDelta{Name: n, A: va, B: vb, OnlyA: !inB, OnlyB: !inA}
		switch {
		case va == vb:
			d.Pct = 0
		case va == 0:
			d.Pct = 100
		default:
			d.Pct = (vb - va) / va * 100
		}
		out = append(out, d)
	}
	return out
}

// Digest fingerprints any JSON-encodable configuration value as a short
// stable hex string (FNV-1a over the canonical JSON encoding). Map keys are
// sorted by encoding/json, so the digest is deterministic for a given value.
func Digest(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("runlog: digest: %w", err)
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// MustDigest is Digest for values known to encode (option structs).
func MustDigest(v any) string {
	d, err := Digest(v)
	if err != nil {
		panic(err)
	}
	return d
}
