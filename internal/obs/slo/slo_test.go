package slo

import (
	"bytes"
	"testing"
	"time"
)

func cfg() Config {
	return Config{
		ViolationTarget: 0.1,
		PowerBudgetW:    5,
		Resolution:      100 * time.Millisecond,
		Windows: []BurnWindow{
			{Long: 2 * time.Second, Short: 500 * time.Millisecond, Threshold: 5},
		},
	}
}

// healthy pumps compliant traffic: 1 pass per 10ms, no violations, 0.02 J
// per pass (2 W average, under the 5 W budget).
func healthy(t *Tracker, from, to time.Duration) {
	for at := from; at < to; at += 10 * time.Millisecond {
		t.RecordPass("m0", at, 5*time.Millisecond, 0.01, 0.02, false)
	}
}

func TestHealthyTrafficDoesNotAlert(t *testing.T) {
	tr := New(cfg())
	healthy(tr, 0, 4*time.Second)
	st := tr.Snapshot()
	if st.Alerting {
		t.Fatalf("healthy traffic alerting: %+v", st)
	}
	if len(st.Models) != 1 {
		t.Fatalf("want 1 model, got %d", len(st.Models))
	}
	m := st.Models[0]
	if m.Model != "m0" || m.Violations != 0 || m.ViolationRate != 0 {
		t.Fatalf("model state wrong: %+v", m)
	}
	if m.LatencyP50S <= 0 || m.AvgPowerW <= 0 {
		t.Fatalf("derived stats missing: %+v", m)
	}
	// Latency objective burn should be exactly 0; energy burn 2W/5W = 0.4.
	lat, en := m.Objectives[0], m.Objectives[1]
	if lat.Name != "latency-degradation" || lat.Windows[0].LongBurn != 0 {
		t.Fatalf("latency objective wrong: %+v", lat)
	}
	if en.Name != "energy-budget" || en.Windows[0].LongBurn < 0.3 || en.Windows[0].LongBurn > 0.5 {
		t.Fatalf("energy burn should be ~0.4: %+v", en)
	}
}

// TestViolationBurstAlerts pins the multi-window AND: a burst of violations
// must push both the short and long windows over the threshold.
func TestViolationBurstAlerts(t *testing.T) {
	tr := New(cfg())
	healthy(tr, 0, 2*time.Second)
	// 100% violations for the last 2s: burn = 1.0/0.1 = 10 > 5 on both
	// windows.
	for at := 2 * time.Second; at < 4*time.Second; at += 10 * time.Millisecond {
		tr.RecordPass("m0", at, 20*time.Millisecond, 0.5, 0.02, true)
	}
	st := tr.Snapshot()
	m := st.Models[0]
	lat := m.Objectives[0]
	if !lat.Windows[0].Alerting || !lat.Alerting || !m.Alerting || !st.Alerting {
		t.Fatalf("violation burst did not alert: %+v", lat)
	}
	if lat.Windows[0].ShortBurn < 5 || lat.Windows[0].LongBurn < 5 {
		t.Fatalf("burns too low: %+v", lat.Windows[0])
	}
}

// TestRecoveredBurstStopsAlerting pins the short-window recovery property:
// after the burst ends and healthy traffic resumes, the short window clears
// even while the long window still remembers the burst.
func TestRecoveredBurstStopsAlerting(t *testing.T) {
	tr := New(cfg())
	for at := time.Duration(0); at < 1500*time.Millisecond; at += 10 * time.Millisecond {
		tr.RecordPass("m0", at, 20*time.Millisecond, 0.5, 0.02, true)
	}
	healthy(tr, 1500*time.Millisecond, 2500*time.Millisecond)
	st := tr.Snapshot()
	w := st.Models[0].Objectives[0].Windows[0]
	if w.LongBurn < 5 {
		t.Fatalf("long window should still see the burst: %+v", w)
	}
	if w.ShortBurn != 0 {
		t.Fatalf("short window should have recovered: %+v", w)
	}
	if w.Alerting || st.Alerting {
		t.Fatalf("recovered traffic must not alert (multi-window AND): %+v", w)
	}
}

// TestRingAgesOut pins that events older than the long window stop counting.
func TestRingAgesOut(t *testing.T) {
	tr := New(cfg())
	for at := time.Duration(0); at < 500*time.Millisecond; at += 10 * time.Millisecond {
		tr.RecordPass("m0", at, 20*time.Millisecond, 0.5, 0.02, true)
	}
	// Jump far past the long window with one healthy pass.
	tr.RecordPass("m0", 10*time.Second, 5*time.Millisecond, 0, 0.02, false)
	st := tr.Snapshot()
	w := st.Models[0].Objectives[0].Windows[0]
	if w.LongBurn != 0 || w.ShortBurn != 0 {
		t.Fatalf("ancient burst still burning: %+v", w)
	}
	if st.Models[0].Violations == 0 {
		t.Fatal("lifetime totals must survive ring aging")
	}
}

func TestEnergyBudgetAlerts(t *testing.T) {
	c := cfg()
	c.PowerBudgetW = 0.001 // absurdly tight: everything over-burns
	tr := New(c)
	healthy(tr, 0, 3*time.Second)
	st := tr.Snapshot()
	en := st.Models[0].Objectives[1]
	if !en.Alerting || !st.Alerting {
		t.Fatalf("energy objective should alert: %+v", en)
	}
}

func TestNoEnergyObjectiveWithoutBudget(t *testing.T) {
	c := cfg()
	c.PowerBudgetW = 0
	tr := New(c)
	healthy(tr, 0, time.Second)
	m := tr.Snapshot().Models[0]
	if len(m.Objectives) != 1 || m.Objectives[0].Name != "latency-degradation" {
		t.Fatalf("want only the latency objective: %+v", m.Objectives)
	}
}

func TestDeterministicJSON(t *testing.T) {
	run := func() []byte {
		tr := New(cfg())
		for i := 0; i < 500; i++ {
			at := time.Duration(i) * 7 * time.Millisecond
			tr.RecordPass("m1", at, time.Duration(i%20+1)*time.Millisecond,
				float64(i%10)/100, 0.01, i%13 == 0)
			tr.RecordPass("m0", at, time.Duration(i%30+2)*time.Millisecond,
				float64(i%5)/100, 0.02, i%7 == 0)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical event streams produced different JSON")
	}
	if !bytes.Contains(a, []byte(`"model": "m0"`)) || !bytes.Contains(a, []byte(`"model": "m1"`)) {
		t.Fatalf("models missing from JSON: %s", a)
	}
	// Sorted by model name: m0 before m1.
	if bytes.Index(a, []byte(`"m0"`)) > bytes.Index(a, []byte(`"m1"`)) {
		t.Fatal("models not sorted by name")
	}
}

func TestHeadlineMetrics(t *testing.T) {
	tr := New(cfg())
	healthy(tr, 0, time.Second)
	tr.RecordPass("m0", time.Second, 20*time.Millisecond, 0.5, 0.02, true)
	h := tr.HeadlineMetrics()
	for _, k := range []string{"slo_models", "slo_passes", "slo_violations",
		"slo_violation_rate", "slo_max_long_burn", "slo_models_alerting"} {
		if _, ok := h[k]; !ok {
			t.Fatalf("headline missing %q: %v", k, h)
		}
	}
	if h["slo_models"] != 1 || h["slo_violations"] != 1 {
		t.Fatalf("headline values wrong: %v", h)
	}
}

func TestNilTracker(t *testing.T) {
	var tr *Tracker
	tr.RecordPass("x", 0, time.Millisecond, 0, 1, true)
	if st := tr.Snapshot(); len(st.Models) != 0 {
		t.Fatal("nil tracker snapshot not empty")
	}
	if h := tr.HeadlineMetrics(); h != nil {
		t.Fatal("nil tracker headline must be nil")
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if c := tr.ConfigView(); c.ViolationTarget != 0 {
		t.Fatal("nil tracker config must be zero")
	}
}

func TestDefaultsApplied(t *testing.T) {
	tr := New(Config{})
	c := tr.ConfigView()
	if c.ViolationTarget != 0.1 || c.Resolution != 250*time.Millisecond || len(c.Windows) != 2 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}
