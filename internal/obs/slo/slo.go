// Package slo implements a rolling-window SLO tracker with multi-window
// burn-rate alerting over the *simulated* clock.
//
// Two objectives are tracked per model:
//
//   - latency-degradation: the fraction of passes whose GPU time exceeded the
//     max-frequency reference by more than the executor's degradation budget
//     must stay below ViolationTarget (the error budget). The executor
//     decides per-pass violation; the tracker owns the budget math.
//   - energy-budget: average power draw must stay below PowerBudgetW
//     (objective disabled when PowerBudgetW <= 0).
//
// Burn rate is the SRE notion: consumption of the error budget relative to
// the allowed rate, so burn 1.0 means "exactly on budget" and burn 14 means
// "the whole budget gone in 1/14 of the window". Each BurnWindow pairs a long
// and a short window; the pair alerts only when BOTH exceed the threshold —
// the long window proves the problem is sustained, the short one proves it is
// still happening (Google SRE Workbook, ch. 5).
//
// Determinism: events arrive in simulated-time order from a single executor,
// state is per-model bucketed rings plus counts and one quantile sketch, and
// Snapshot walks models in sorted name order — so a deterministic simulation
// produces a byte-identical Status via WriteJSON every run. A nil *Tracker
// accepts all calls and does nothing.
package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"powerlens/internal/obs/sketch"
)

// BurnWindow is one long/short multi-window alerting pair.
type BurnWindow struct {
	Long      time.Duration `json:"long"`
	Short     time.Duration `json:"short"`
	Threshold float64       `json:"threshold"`
}

// DefaultBurnWindows mirrors the classic SRE page/ticket ladder, scaled to
// simulation timescales (seconds, not hours): a fast pair that pages on
// budget exhaustion within ~20 windows, and a slow pair for sustained burn.
var DefaultBurnWindows = []BurnWindow{
	{Long: 5 * time.Second, Short: 1 * time.Second, Threshold: 10},
	{Long: 30 * time.Second, Short: 5 * time.Second, Threshold: 2},
}

// Config parameterizes a Tracker. Zero fields take defaults.
type Config struct {
	// ViolationTarget is the allowed fraction of QoS-violating passes
	// (the latency error budget). Default 0.1.
	ViolationTarget float64
	// PowerBudgetW is the per-model average power objective in watts;
	// <= 0 disables the energy objective.
	PowerBudgetW float64
	// Windows are the burn-rate alerting pairs. Default DefaultBurnWindows.
	Windows []BurnWindow
	// Resolution is the ring bucket width. Default 250ms.
	Resolution time.Duration
}

func (c Config) withDefaults() Config {
	if c.ViolationTarget <= 0 {
		c.ViolationTarget = 0.1
	}
	if len(c.Windows) == 0 {
		c.Windows = DefaultBurnWindows
	}
	if c.Resolution <= 0 {
		c.Resolution = 250 * time.Millisecond
	}
	return c
}

// bucket is one resolution slot of a model's ring.
type bucket struct {
	passes  uint64
	bad     uint64
	energyJ float64
}

// modelState is the rolling state for one model.
type modelState struct {
	name    string
	ring    []bucket
	head    int   // ring index of the bucket holding `slot`
	slot    int64 // absolute bucket number at head, -1 before first event
	passes  uint64
	bad     uint64
	energyJ float64
	degSum  float64 // sum of (gpu/ref - 1) degradations
	lat     *sketch.Sketch
}

// DriftAlert is one feature dimension whose live distribution diverged past
// the drift threshold (see obs/audit's PSI monitor).
type DriftAlert struct {
	Dim       int     `json:"dim"`
	Name      string  `json:"name,omitempty"`
	Score     float64 `json:"score"`
	Threshold float64 `json:"threshold"`
}

// Tracker accumulates SLO events. Safe for concurrent use, though the
// executor feeds it sequentially in simulated-time order.
type Tracker struct {
	mu     sync.Mutex
	cfg    Config
	models map[string]*modelState
	now    time.Duration // latest event time seen
	drift  []DriftAlert
}

// New returns a Tracker with cfg (zero fields defaulted).
func New(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), models: map[string]*modelState{}}
}

// ConfigView returns the effective (defaulted) configuration.
func (t *Tracker) ConfigView() Config {
	if t == nil {
		return Config{}
	}
	return t.cfg
}

// SetDrift installs the current model-drift alerts (dimensions whose PSI
// divergence exceeded the threshold). The slice is copied; passing nil or an
// empty slice clears the alerts. Any active drift alert makes the overall
// Status alerting.
func (t *Tracker) SetDrift(alerts []DriftAlert) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.drift = append(t.drift[:0], alerts...)
	t.mu.Unlock()
}

// RecordPass records one completed pass for a model at simulated time `at`
// (end of pass): wall latency, degradation vs the max-frequency reference
// (gpu/ref - 1), energy spent, and whether the pass violated the QoS budget.
// Events must arrive in non-decreasing `at` order per tracker.
func (t *Tracker) RecordPass(modelName string, at time.Duration, wall time.Duration, degradation float64, energyJ float64, violated bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	m, ok := t.models[modelName]
	if !ok {
		n := 1
		for _, w := range t.cfg.Windows {
			if b := int(w.Long / t.cfg.Resolution); b+1 > n {
				n = b + 1
			}
		}
		m = &modelState{name: modelName, ring: make([]bucket, n), slot: -1, lat: sketch.New()}
		t.models[modelName] = m
	}
	if at > t.now {
		t.now = at
	}
	slot := int64(at / t.cfg.Resolution)
	if m.slot < 0 {
		m.slot = slot
	}
	if gap := slot - m.slot; gap >= int64(len(m.ring)) {
		// The whole ring has aged out; clear it and jump.
		for i := range m.ring {
			m.ring[i] = bucket{}
		}
		m.head, m.slot = 0, slot
	} else {
		for m.slot < slot {
			m.slot++
			m.head = (m.head + 1) % len(m.ring)
			m.ring[m.head] = bucket{}
		}
	}
	b := &m.ring[m.head]
	b.passes++
	m.passes++
	if violated {
		b.bad++
		m.bad++
	}
	b.energyJ += energyJ
	m.energyJ += energyJ
	m.degSum += degradation
	m.lat.Observe(wall.Seconds())
	t.mu.Unlock()
}

// windowSums returns passes/bad/energy over the trailing window w ending at
// the tracker's current time.
func (t *Tracker) windowSums(m *modelState, w time.Duration) (passes, bad uint64, energyJ float64) {
	if m.slot < 0 {
		return 0, 0, 0
	}
	nowSlot := int64(t.now / t.cfg.Resolution)
	nb := int64(w / t.cfg.Resolution)
	if nb < 1 {
		nb = 1
	}
	if int(nb) > len(m.ring) {
		nb = int64(len(m.ring))
	}
	for i := int64(0); i < nb; i++ {
		slot := nowSlot - i
		if slot < 0 || slot > m.slot || m.slot-slot >= int64(len(m.ring)) {
			continue
		}
		idx := (m.head - int(m.slot-slot)%len(m.ring) + len(m.ring)) % len(m.ring)
		b := m.ring[idx]
		passes += b.passes
		bad += b.bad
		energyJ += b.energyJ
	}
	return passes, bad, energyJ
}

// WindowBurn is the burn state of one long/short pair for one objective.
type WindowBurn struct {
	LongS     float64 `json:"longS"`
	ShortS    float64 `json:"shortS"`
	Threshold float64 `json:"threshold"`
	LongBurn  float64 `json:"longBurn"`
	ShortBurn float64 `json:"shortBurn"`
	Alerting  bool    `json:"alerting"`
}

// ObjectiveStatus is one objective's burn state for one model.
type ObjectiveStatus struct {
	Name     string       `json:"name"`   // "latency-degradation" | "energy-budget"
	Target   float64      `json:"target"` // violation fraction or watts
	Windows  []WindowBurn `json:"windows"`
	Alerting bool         `json:"alerting"`
}

// ModelStatus is the full SLO state of one model.
type ModelStatus struct {
	Model           string            `json:"model"`
	Passes          uint64            `json:"passes"`
	Violations      uint64            `json:"violations"`
	ViolationRate   float64           `json:"violationRate"`
	MeanDegradation float64           `json:"meanDegradation"`
	LatencyP50S     float64           `json:"latencyP50S"`
	LatencyP90S     float64           `json:"latencyP90S"`
	LatencyP99S     float64           `json:"latencyP99S"`
	EnergyJ         float64           `json:"energyJ"`
	AvgPowerW       float64           `json:"avgPowerW"`
	Objectives      []ObjectiveStatus `json:"objectives"`
	Alerting        bool              `json:"alerting"`
}

// Status is a deterministic point-in-time view of the tracker.
type Status struct {
	Schema          int           `json:"schema"`
	NowS            float64       `json:"nowS"` // simulated seconds
	ViolationTarget float64       `json:"violationTarget"`
	PowerBudgetW    float64       `json:"powerBudgetW,omitempty"`
	Windows         []BurnWindow  `json:"burnWindows"`
	Models          []ModelStatus `json:"models"`
	// Drift lists feature dimensions currently past the drift threshold;
	// omitted when no drift monitor is wired in or nothing is alerting, so
	// pre-drift Status bytes are unchanged.
	Drift    []DriftAlert `json:"drift,omitempty"`
	Alerting bool         `json:"alerting"`
}

// StatusSchema identifies the Status JSON layout.
const StatusSchema = 1

// Snapshot computes burn rates for every model at the tracker's current
// simulated time. Models are sorted by name; equal trackers produce equal
// Status values.
func (t *Tracker) Snapshot() Status {
	st := Status{Schema: StatusSchema, Models: []ModelStatus{}}
	if t == nil {
		return st
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st.NowS = t.now.Seconds()
	st.ViolationTarget = t.cfg.ViolationTarget
	st.PowerBudgetW = t.cfg.PowerBudgetW
	st.Windows = append([]BurnWindow(nil), t.cfg.Windows...)

	names := make([]string, 0, len(t.models))
	for n := range t.models {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, n := range names {
		m := t.models[n]
		ms := ModelStatus{
			Model:       m.name,
			Passes:      m.passes,
			Violations:  m.bad,
			EnergyJ:     m.energyJ,
			LatencyP50S: m.lat.Quantile(0.5),
			LatencyP90S: m.lat.Quantile(0.9),
			LatencyP99S: m.lat.Quantile(0.99),
		}
		if m.passes > 0 {
			ms.ViolationRate = float64(m.bad) / float64(m.passes)
			ms.MeanDegradation = m.degSum / float64(m.passes)
		}
		if t.now > 0 {
			ms.AvgPowerW = m.energyJ / t.now.Seconds()
		}

		latObj := ObjectiveStatus{Name: "latency-degradation", Target: t.cfg.ViolationTarget}
		for _, w := range t.cfg.Windows {
			wb := WindowBurn{LongS: w.Long.Seconds(), ShortS: w.Short.Seconds(), Threshold: w.Threshold}
			wb.LongBurn = t.latencyBurn(m, w.Long)
			wb.ShortBurn = t.latencyBurn(m, w.Short)
			wb.Alerting = wb.LongBurn >= w.Threshold && wb.ShortBurn >= w.Threshold
			latObj.Alerting = latObj.Alerting || wb.Alerting
			latObj.Windows = append(latObj.Windows, wb)
		}
		ms.Objectives = append(ms.Objectives, latObj)

		if t.cfg.PowerBudgetW > 0 {
			enObj := ObjectiveStatus{Name: "energy-budget", Target: t.cfg.PowerBudgetW}
			for _, w := range t.cfg.Windows {
				wb := WindowBurn{LongS: w.Long.Seconds(), ShortS: w.Short.Seconds(), Threshold: w.Threshold}
				wb.LongBurn = t.energyBurn(m, w.Long)
				wb.ShortBurn = t.energyBurn(m, w.Short)
				wb.Alerting = wb.LongBurn >= w.Threshold && wb.ShortBurn >= w.Threshold
				enObj.Alerting = enObj.Alerting || wb.Alerting
				enObj.Windows = append(enObj.Windows, wb)
			}
			ms.Objectives = append(ms.Objectives, enObj)
			ms.Alerting = ms.Alerting || enObj.Alerting
		}
		ms.Alerting = ms.Alerting || latObj.Alerting
		st.Alerting = st.Alerting || ms.Alerting
		st.Models = append(st.Models, ms)
	}
	if len(t.drift) > 0 {
		st.Drift = append([]DriftAlert(nil), t.drift...)
		st.Alerting = true
	}
	return st
}

// latencyBurn is badFraction(window) / ViolationTarget: 1.0 = burning the
// error budget exactly at the allowed rate.
func (t *Tracker) latencyBurn(m *modelState, w time.Duration) float64 {
	passes, bad, _ := t.windowSums(m, w)
	if passes == 0 {
		return 0
	}
	return float64(bad) / float64(passes) / t.cfg.ViolationTarget
}

// energyBurn is actual joules over the window divided by the budgeted joules
// (PowerBudgetW x observed window span).
func (t *Tracker) energyBurn(m *modelState, w time.Duration) float64 {
	_, _, energy := t.windowSums(m, w)
	span := w
	if t.now < span {
		span = t.now
	}
	if span <= 0 {
		return 0
	}
	return energy / (t.cfg.PowerBudgetW * span.Seconds())
}

// WriteJSON writes the Status as indented JSON; equal trackers write equal
// bytes. The /slo endpoint and the slo.json run artifact both use this.
func (t *Tracker) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}

// HeadlineMetrics flattens the Status into runlog-manifest metrics.
func (t *Tracker) HeadlineMetrics() map[string]float64 {
	if t == nil {
		return nil
	}
	st := t.Snapshot()
	var passes, viol uint64
	maxBurn := 0.0
	alerting := 0.0
	for _, m := range st.Models {
		passes += m.Passes
		viol += m.Violations
		for _, o := range m.Objectives {
			for _, w := range o.Windows {
				if w.LongBurn > maxBurn {
					maxBurn = w.LongBurn
				}
			}
		}
		if m.Alerting {
			alerting++
		}
	}
	h := map[string]float64{
		"slo_models":          float64(len(st.Models)),
		"slo_passes":          float64(passes),
		"slo_violations":      float64(viol),
		"slo_max_long_burn":   maxBurn,
		"slo_models_alerting": alerting,
		"slo_drift_alerts":    float64(len(st.Drift)),
	}
	if passes > 0 {
		h["slo_violation_rate"] = float64(viol) / float64(passes)
	} else {
		h["slo_violation_rate"] = 0
	}
	return h
}

// String renders a compact one-line summary, for logs.
func (s Status) String() string {
	alerting := 0
	for _, m := range s.Models {
		if m.Alerting {
			alerting++
		}
	}
	return fmt.Sprintf("slo: %d models, %d alerting, t=%.2fs", len(s.Models), alerting, s.NowS)
}
