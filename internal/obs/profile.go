package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Lightweight profiling hooks for the hot offline paths (feature extraction,
// Mahalanobis clustering, executor stepping). A region records wall time per
// invocation and, when alloc sampling is on, heap allocation deltas read from
// runtime.MemStats. Alloc numbers are approximate under concurrency — the
// counters are process-wide — which is the documented trade for staying
// dependency-free and cheap.

// RegionStats is the aggregate for one named region.
type RegionStats struct {
	Name        string        `json:"name"`
	Count       int64         `json:"count"`
	Wall        time.Duration `json:"wallNs"`
	AllocBytes  uint64        `json:"allocBytes,omitempty"`
	AllocObjs   uint64        `json:"allocObjects,omitempty"`
	MaxInterval time.Duration `json:"maxNs,omitempty"`
}

// Mean returns the mean wall time per invocation.
func (r RegionStats) Mean() time.Duration {
	if r.Count == 0 {
		return 0
	}
	return r.Wall / time.Duration(r.Count)
}

// Profiler aggregates named regions. Safe for concurrent use; a nil
// *Profiler is valid and records nothing.
type Profiler struct {
	// SampleAllocs turns on allocation sampling via runtime.ReadMemStats.
	// The read costs tens of microseconds, so leave it off around anything
	// hotter than the offline analysis stages.
	SampleAllocs bool

	mu      sync.Mutex
	regions map[string]*RegionStats
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler { return &Profiler{regions: map[string]*RegionStats{}} }

// Region starts timing a named region and returns the stop function:
//
//	defer prof.Region("cluster.BuildPowerView")()
func (p *Profiler) Region(name string) func() {
	if p == nil {
		return func() {}
	}
	var m0 runtime.MemStats
	sample := p.SampleAllocs
	if sample {
		runtime.ReadMemStats(&m0)
	}
	start := time.Now()
	return func() {
		wall := time.Since(start)
		var db, do uint64
		if sample {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			db = m1.TotalAlloc - m0.TotalAlloc
			do = m1.Mallocs - m0.Mallocs
		}
		p.mu.Lock()
		r, ok := p.regions[name]
		if !ok {
			r = &RegionStats{Name: name}
			p.regions[name] = r
		}
		r.Count++
		r.Wall += wall
		r.AllocBytes += db
		r.AllocObjs += do
		if wall > r.MaxInterval {
			r.MaxInterval = wall
		}
		p.mu.Unlock()
	}
}

// Snapshot returns the regions sorted by name.
func (p *Profiler) Snapshot() []RegionStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]RegionStats, 0, len(p.regions))
	for _, r := range p.regions {
		out = append(out, *r)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
