package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracerRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.Complete("block", "921 MHz", 1, 10*time.Millisecond, 5*time.Millisecond,
		map[string]any{"gpu_level": 7})
	tr.Instant("fault", "sensor-dropout", 1, 12*time.Millisecond, nil)
	var sb strings.Builder
	if err := tr.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadChromeTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Name != "921 MHz" || evs[0].Phase != PhaseComplete {
		t.Fatalf("event[0] = %+v", evs[0])
	}
	if evs[0].Start() != 10*time.Millisecond || evs[0].Duration() != 5*time.Millisecond {
		t.Fatalf("span times = %v + %v", evs[0].Start(), evs[0].Duration())
	}
	if evs[1].Phase != PhaseInstant || evs[1].Scope != "t" {
		t.Fatalf("event[1] = %+v", evs[1])
	}
	if lvl, ok := evs[0].Args["gpu_level"].(float64); !ok || lvl != 7 {
		t.Fatalf("args = %+v", evs[0].Args)
	}
}

func TestEventsSorted(t *testing.T) {
	tr := NewTracer()
	// Emitted out of track/time order, as concurrent nodes would.
	tr.Instant("a", "late", 2, 30*time.Millisecond, nil)
	tr.Instant("a", "tie-second", 1, 10*time.Millisecond, nil)
	tr.Instant("a", "early", 2, 5*time.Millisecond, nil)
	tr.Instant("a", "first", 1, time.Millisecond, nil)
	evs := tr.Events()
	var names []string
	for _, e := range evs {
		names = append(names, e.Name)
	}
	want := "first,tie-second,early,late"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestEventsTieBreakBySeq(t *testing.T) {
	tr := NewTracer()
	tr.Instant("a", "one", 1, time.Millisecond, nil)
	tr.Instant("a", "two", 1, time.Millisecond, nil)
	evs := tr.Events()
	if evs[0].Name != "one" || evs[1].Name != "two" {
		t.Fatalf("same-timestamp events must keep emission order: %+v", evs)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Complete("c", "n", 1, 0, 0, nil)
	tr.Instant("c", "n", 1, 0, nil)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be inert")
	}
	var sb strings.Builder
	if err := tr.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if evs, err := ReadChromeTrace(strings.NewReader(sb.String())); err != nil || len(evs) != 0 {
		t.Fatalf("empty trace round-trip: %v, %d events", err, len(evs))
	}
}

func TestReadChromeTraceRejects(t *testing.T) {
	if _, err := ReadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must not decode")
	}
	noPhase := `{"traceEvents":[{"name":"x","ts":1}],"displayTimeUnit":"ms"}`
	if _, err := ReadChromeTrace(strings.NewReader(noPhase)); err == nil {
		t.Fatal("events without a phase must be rejected")
	}
}
