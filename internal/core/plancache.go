// The plan cache is the online serving fast path of the framework: all DVFS
// decisions are preset before inference, so a repeat network should not pay
// the full Analyze pipeline (feature extraction → hyperparameter prediction →
// clustering → per-block decisions) on every request. A bounded,
// concurrency-safe LRU keyed by the canonical graph digest plus the
// framework's configuration digest memoizes Analyze results; repeat analyses
// reduce to one graph hash and a map hit. Misses are single-flighted: N
// concurrent requests for the same new network run the pipeline once and
// share the result.
package core

import (
	"container/list"
	"encoding/json"
	"sync"

	"powerlens/internal/graph"
	"powerlens/internal/obs"
)

// planKey identifies one memoized analysis: which network (canonical graph
// digest) under which deployment (config digest — platform, grid, scalers
// and model weights). The config half guards against a cache populated by
// one framework ever being consulted with keys from another (e.g. plans
// serialized alongside provenance digests).
type planKey struct {
	Graph  uint64
	Config uint64
}

// planEntry is one cache slot. ready is closed once a/err are final; hits on
// an in-flight entry wait on it instead of duplicating the pipeline.
type planEntry struct {
	key   planKey
	ready chan struct{}
	done  bool // set under planCache.mu when a/err are final
	a     *Analysis
	err   error
}

// planCache is the bounded LRU. All state is guarded by mu; the Analyze
// pipeline itself runs outside the lock so concurrent misses on distinct
// graphs never serialize behind each other's map bookkeeping.
type planCache struct {
	mu        sync.Mutex
	capacity  int
	cfgDigest uint64
	entries   map[planKey]*list.Element
	lru       *list.List // front = most recently used

	hits, misses, evictions uint64

	mHits, mMisses, mEvictions obs.Counter
}

// DefaultPlanCacheCapacity bounds the cache when EnablePlanCache is called
// with a non-positive capacity: enough for a large mixed serving fleet's
// model set while keeping worst-case memory trivial (an Analysis is a few
// KB).
const DefaultPlanCacheCapacity = 128

// EnablePlanCache attaches a bounded plan cache to the framework; subsequent
// Analyze calls are memoized by (graph digest, config digest). capacity <= 0
// uses DefaultPlanCacheCapacity. reg, when non-nil, receives hit/miss/evict
// counters (core_plan_cache_{hits,misses,evictions}_total); a nil registry
// disables metrics, never the cache. Enabling replaces any previous cache
// (and drops its contents).
func (f *Framework) EnablePlanCache(capacity int, reg *obs.Registry) {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCapacity
	}
	c := &planCache{
		capacity:   capacity,
		cfgDigest:  f.ConfigDigest(),
		entries:    make(map[planKey]*list.Element, capacity),
		lru:        list.New(),
		mHits:      reg.Counter("core_plan_cache_hits_total", "Plan-cache lookups served from a memoized analysis."),
		mMisses:    reg.Counter("core_plan_cache_misses_total", "Plan-cache lookups that ran the full Analyze pipeline."),
		mEvictions: reg.Counter("core_plan_cache_evictions_total", "Memoized analyses evicted by the LRU bound."),
	}
	f.cacheMu.Lock()
	f.cache = c
	f.cacheMu.Unlock()
}

// DisablePlanCache detaches the plan cache (dropping its contents);
// subsequent Analyze calls run the full pipeline again.
func (f *Framework) DisablePlanCache() {
	f.cacheMu.Lock()
	f.cache = nil
	f.cacheMu.Unlock()
}

// planCacheHandle returns the attached cache (nil when disabled).
func (f *Framework) planCacheHandle() *planCache {
	f.cacheMu.Lock()
	defer f.cacheMu.Unlock()
	return f.cache
}

// PlanCacheStats is a point-in-time snapshot of the plan cache.
type PlanCacheStats struct {
	Hits, Misses, Evictions uint64
	Size, Capacity          int
}

// PlanCacheStats returns the cache counters (zero value when no cache is
// attached).
func (f *Framework) PlanCacheStats() PlanCacheStats {
	c := f.planCacheHandle()
	if c == nil {
		return PlanCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Size: len(c.entries), Capacity: c.capacity,
	}
}

// ConfigDigest returns the FNV-1a/64 digest of the framework's analysis
// configuration: platform, hyperparameter grid, both scalers and both model
// weight sets — everything Analyze's output depends on besides the graph.
// It hashes the canonical JSON serialization (the same bytes Save persists),
// so a retrained or reloaded framework gets a different digest and never
// shares cache keys with stale plans.
func (f *Framework) ConfigDigest() uint64 {
	b, err := json.Marshal(frameworkFile{
		Platform:       f.Platform.Name,
		Grid:           f.Grid,
		HyperModel:     f.HyperModel,
		HyperScaler:    f.HyperScaler,
		DecisionModel:  f.DecisionModel,
		DecisionScaler: f.DecisionScaler,
	})
	if err != nil {
		// frameworkFile round-trips through Save/LoadFramework; it cannot
		// contain unmarshalable values.
		panic("core: config digest: " + err.Error())
	}
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// analyze serves one Analyze call through the cache: digest, hit-or-insert
// under the lock, pipeline outside it, single-flight for concurrent misses
// on the same key.
func (c *planCache) analyze(f *Framework, g *graph.Graph) (*Analysis, error) {
	key := planKey{Graph: graph.Digest(g), Config: c.cfgDigest}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*planEntry)
		c.hits++
		c.mu.Unlock()
		c.mHits.Inc()
		<-e.ready
		return e.a, e.err
	}
	e := &planEntry{key: key, ready: make(chan struct{})}
	el := c.lru.PushFront(e)
	c.entries[key] = el
	c.misses++
	c.evictLocked()
	c.mu.Unlock()
	c.mMisses.Inc()

	a, err := f.analyzeUncached(g)

	c.mu.Lock()
	e.a, e.err, e.done = a, err, true
	if err != nil {
		// Failed analyses are not cached: remove the slot (if the LRU still
		// holds it) so a later call can retry.
		if cur, ok := c.entries[key]; ok && cur == el {
			c.lru.Remove(el)
			delete(c.entries, key)
		}
	}
	close(e.ready) // waiters observe a/err via the close happens-before
	c.mu.Unlock()
	return a, err
}

// evictLocked trims completed entries from the LRU tail until the cache fits
// its capacity. In-flight entries are skipped — evicting one would let a
// concurrent duplicate pipeline start; the bound is restored as soon as they
// complete and age out.
func (c *planCache) evictLocked() {
	evicted := 0
	for el := c.lru.Back(); el != nil && len(c.entries) > c.capacity; {
		prev := el.Prev()
		e := el.Value.(*planEntry)
		if e.done {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.evictions++
			evicted++
		}
		el = prev
	}
	for i := 0; i < evicted; i++ {
		c.mEvictions.Inc()
	}
}
