package core

import (
	"encoding/json"
	"fmt"
	"os"

	"powerlens/internal/cluster"
	"powerlens/internal/hw"
	"powerlens/internal/nn"
)

// frameworkFile is the on-disk form of a trained deployment. Only inference
// state is persisted (weights, scalers, grid); optimizer state is not needed
// after training.
type frameworkFile struct {
	Platform string                `json:"platform"`
	Grid     []cluster.Hyperparams `json:"grid"`

	HyperModel     *nn.TwoStageNet `json:"hyper_model"`
	HyperScaler    *nn.FacetScaler `json:"hyper_scaler"`
	DecisionModel  *nn.TwoStageNet `json:"decision_model"`
	DecisionScaler *nn.FacetScaler `json:"decision_scaler"`
}

// Save writes the trained framework to a JSON file.
func (f *Framework) Save(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	defer out.Close()
	ff := frameworkFile{
		Platform:       f.Platform.Name,
		Grid:           f.Grid,
		HyperModel:     f.HyperModel,
		HyperScaler:    f.HyperScaler,
		DecisionModel:  f.DecisionModel,
		DecisionScaler: f.DecisionScaler,
	}
	if err := json.NewEncoder(out).Encode(ff); err != nil {
		return fmt.Errorf("core: encode: %w", err)
	}
	return nil
}

// LoadFramework reads a deployment saved with Save. The platform is
// reconstructed from its name (TX2 or AGX). Truncated or corrupt files,
// trailing garbage, and weight matrices whose shapes do not chain into a
// valid network are all rejected with descriptive errors rather than being
// allowed to panic at first inference.
func LoadFramework(path string) (*Framework, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	defer in.Close()
	dec := json.NewDecoder(in)
	var ff frameworkFile
	if err := dec.Decode(&ff); err != nil {
		return nil, fmt.Errorf("core: decode %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("core: decode %s: trailing data after framework object", path)
	}
	var p *hw.Platform
	switch ff.Platform {
	case "TX2":
		p = hw.TX2()
	case "AGX":
		p = hw.AGX()
	default:
		return nil, fmt.Errorf("core: unknown platform %q", ff.Platform)
	}
	if ff.HyperModel == nil || ff.DecisionModel == nil || ff.HyperScaler == nil || ff.DecisionScaler == nil {
		return nil, fmt.Errorf("core: %s missing model state", path)
	}
	if len(ff.Grid) == 0 {
		return nil, fmt.Errorf("core: %s: empty hyperparameter grid", path)
	}
	if err := validateNet("hyper_model", ff.HyperModel); err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	if err := validateNet("decision_model", ff.DecisionModel); err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	if err := validateScaler("hyper_scaler", ff.HyperScaler, ff.HyperModel); err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	if err := validateScaler("decision_scaler", ff.DecisionScaler, ff.DecisionModel); err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	return &Framework{
		Platform:       p,
		Grid:           ff.Grid,
		HyperModel:     ff.HyperModel,
		HyperScaler:    ff.HyperScaler,
		DecisionModel:  ff.DecisionModel,
		DecisionScaler: ff.DecisionScaler,
	}, nil
}

// validateNet checks that a deserialized TwoStageNet is structurally sound:
// every layer carries a weight matrix whose declared shape matches its
// backing slice, biases match the output width, and layer widths chain from
// the structural facet through the mid-network stats injection to the
// logits. A file that fails any of these would panic (or silently read out
// of bounds) on the first Forward call.
func validateNet(name string, n *nn.TwoStageNet) error {
	if n.StructDim <= 0 || n.NumClasses < 2 || n.StatsDim < 0 {
		return fmt.Errorf("%s: bad dims struct=%d stats=%d classes=%d",
			name, n.StructDim, n.StatsDim, n.NumClasses)
	}
	if len(n.Front) == 0 || len(n.Back) == 0 {
		return fmt.Errorf("%s: missing layers (front=%d back=%d)", name, len(n.Front), len(n.Back))
	}
	in := n.StructDim
	var err error
	for i, l := range n.Front {
		if in, err = validateLayer(fmt.Sprintf("%s front[%d]", name, i), l, in); err != nil {
			return err
		}
	}
	in += n.StatsDim // mid-network stats injection widens the hidden vector
	for i, l := range n.Back {
		if in, err = validateLayer(fmt.Sprintf("%s back[%d]", name, i), l, in); err != nil {
			return err
		}
	}
	if in != n.NumClasses {
		return fmt.Errorf("%s: final layer emits %d logits, want %d classes", name, in, n.NumClasses)
	}
	return nil
}

// validateLayer checks one dense layer against its expected input width and
// returns its output width.
func validateLayer(name string, l *nn.DenseLayer, in int) (int, error) {
	if l == nil || l.W == nil {
		return 0, fmt.Errorf("%s: missing weights", name)
	}
	if l.W.Rows <= 0 || l.W.Cols <= 0 {
		return 0, fmt.Errorf("%s: degenerate weight shape %dx%d", name, l.W.Rows, l.W.Cols)
	}
	if len(l.W.Data) != l.W.Rows*l.W.Cols {
		return 0, fmt.Errorf("%s: weight matrix %dx%d backed by %d values, want %d",
			name, l.W.Rows, l.W.Cols, len(l.W.Data), l.W.Rows*l.W.Cols)
	}
	if l.W.Cols != in {
		return 0, fmt.Errorf("%s: expects %d inputs, previous layer provides %d", name, l.W.Cols, in)
	}
	if len(l.B) != l.W.Rows {
		return 0, fmt.Errorf("%s: %d biases for %d outputs", name, len(l.B), l.W.Rows)
	}
	return l.W.Rows, nil
}

// validateScaler checks a deserialized FacetScaler against the facet widths
// of the network it normalizes inputs for.
func validateScaler(name string, s *nn.FacetScaler, n *nn.TwoStageNet) error {
	if s.Structural == nil || s.Stats == nil {
		return fmt.Errorf("%s: missing per-facet scalers", name)
	}
	facets := []struct {
		facet       string
		means, stds []float64
		want        int
	}{
		{"structural", s.Structural.Means, s.Structural.Stds, n.StructDim},
		{"stats", s.Stats.Means, s.Stats.Stds, n.StatsDim},
	}
	for _, sc := range facets {
		facet := sc.facet
		if len(sc.means) != len(sc.stds) {
			return fmt.Errorf("%s %s: %d means vs %d stds", name, facet, len(sc.means), len(sc.stds))
		}
		if len(sc.means) != sc.want {
			return fmt.Errorf("%s %s: scales %d features, model expects %d",
				name, facet, len(sc.means), sc.want)
		}
	}
	return nil
}
