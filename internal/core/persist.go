package core

import (
	"encoding/json"
	"fmt"
	"os"

	"powerlens/internal/cluster"
	"powerlens/internal/hw"
	"powerlens/internal/nn"
)

// frameworkFile is the on-disk form of a trained deployment. Only inference
// state is persisted (weights, scalers, grid); optimizer state is not needed
// after training.
type frameworkFile struct {
	Platform string                `json:"platform"`
	Grid     []cluster.Hyperparams `json:"grid"`

	HyperModel     *nn.TwoStageNet `json:"hyper_model"`
	HyperScaler    *nn.FacetScaler `json:"hyper_scaler"`
	DecisionModel  *nn.TwoStageNet `json:"decision_model"`
	DecisionScaler *nn.FacetScaler `json:"decision_scaler"`
}

// Save writes the trained framework to a JSON file.
func (f *Framework) Save(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	defer out.Close()
	ff := frameworkFile{
		Platform:       f.Platform.Name,
		Grid:           f.Grid,
		HyperModel:     f.HyperModel,
		HyperScaler:    f.HyperScaler,
		DecisionModel:  f.DecisionModel,
		DecisionScaler: f.DecisionScaler,
	}
	if err := json.NewEncoder(out).Encode(ff); err != nil {
		return fmt.Errorf("core: encode: %w", err)
	}
	return nil
}

// LoadFramework reads a deployment saved with Save. The platform is
// reconstructed from its name (TX2 or AGX).
func LoadFramework(path string) (*Framework, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	defer in.Close()
	var ff frameworkFile
	if err := json.NewDecoder(in).Decode(&ff); err != nil {
		return nil, fmt.Errorf("core: decode: %w", err)
	}
	var p *hw.Platform
	switch ff.Platform {
	case "TX2":
		p = hw.TX2()
	case "AGX":
		p = hw.AGX()
	default:
		return nil, fmt.Errorf("core: unknown platform %q", ff.Platform)
	}
	if ff.HyperModel == nil || ff.DecisionModel == nil || ff.HyperScaler == nil || ff.DecisionScaler == nil {
		return nil, fmt.Errorf("core: %s missing model state", path)
	}
	return &Framework{
		Platform:       p,
		Grid:           ff.Grid,
		HyperModel:     ff.HyperModel,
		HyperScaler:    ff.HyperScaler,
		DecisionModel:  ff.DecisionModel,
		DecisionScaler: ff.DecisionScaler,
	}, nil
}
