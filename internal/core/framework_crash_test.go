package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"powerlens/internal/checkpoint"
	"powerlens/internal/dataset"
	"powerlens/internal/hw"
	"powerlens/internal/nn"
)

// modelBytes serializes a model's weights (the exported fields: W, B, ReLU)
// for bit-exact comparison across training runs.
func modelBytes(t *testing.T, n *nn.TwoStageNet) []byte {
	t.Helper()
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The framework trainer must survive drain and kill mid-training and, on
// resume, produce exactly the models an uninterrupted run would have.
func TestTrainFrameworkCheckpointedResume(t *testing.T) {
	p := hw.TX2()
	cfg := DefaultDeployConfig()
	cfg.NumNetworks = 30
	cfg.HyperTrain.Epochs = 6
	cfg.DecisionTrain.Epochs = 6
	dsA, dsB := dataset.Generate(p, dataset.DefaultConfig(cfg.NumNetworks, cfg.Seed))

	refReport := &DeployReport{}
	ref, err := TrainFramework(p, dsA, dsB, cfg, refReport)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	dir, err := checkpoint.Open(filepath.Join(t.TempDir(), "ck"))
	if err != nil {
		t.Fatal(err)
	}

	// A pre-closed Stop drains immediately with ErrDrained.
	stop := make(chan struct{})
	close(stop)
	if _, err := TrainFrameworkCheckpointed(p, dsA, dsB, cfg, &DeployReport{},
		&CheckpointOptions{Dir: dir, Stop: stop}); !errors.Is(err, ErrDrained) {
		t.Fatalf("drain: err = %v, want ErrDrained", err)
	}

	// Kill partway into training (a few epoch checkpoints land first).
	dir.SetHooks(checkpoint.NewHooks(3, checkpoint.KillElideRename))
	if _, err := TrainFrameworkCheckpointed(p, dsA, dsB, cfg, &DeployReport{},
		&CheckpointOptions{Dir: dir, Every: 1}); !errors.Is(err, checkpoint.ErrKilled) {
		t.Fatalf("kill: err = %v, want ErrKilled", err)
	}
	dir.SetHooks(nil)

	// Resume to completion and compare against the uninterrupted reference.
	gotReport := &DeployReport{}
	got, err := TrainFrameworkCheckpointed(p, dsA, dsB, cfg, gotReport,
		&CheckpointOptions{Dir: dir, Every: 1})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !bytes.Equal(modelBytes(t, got.HyperModel), modelBytes(t, ref.HyperModel)) {
		t.Error("hyper model weights diverged from uninterrupted run")
	}
	if !bytes.Equal(modelBytes(t, got.DecisionModel), modelBytes(t, ref.DecisionModel)) {
		t.Error("decision model weights diverged from uninterrupted run")
	}
	if gotReport.HyperAccuracy != refReport.HyperAccuracy ||
		gotReport.DecisionAccuracy != refReport.DecisionAccuracy {
		t.Errorf("accuracies diverged: %v/%v vs %v/%v",
			gotReport.HyperAccuracy, gotReport.DecisionAccuracy,
			refReport.HyperAccuracy, refReport.DecisionAccuracy)
	}
}
