// Package core is the public face of the PowerLens framework (Fig. 2): the
// offline deployment workflow (dataset generation → model training) and the
// per-model analysis workflow (feature extraction → hyperparameter
// prediction → power behavior similarity clustering → per-block target
// frequency decisions → a runtime frequency plan).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"powerlens/internal/checkpoint"
	"powerlens/internal/cluster"
	"powerlens/internal/dataset"
	"powerlens/internal/features"
	"powerlens/internal/governor"
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/nn"
	"powerlens/internal/obs/audit"
	"powerlens/internal/sim"
)

// Framework is a trained PowerLens deployment for one hardware platform.
type Framework struct {
	Platform *hw.Platform
	Grid     []cluster.Hyperparams

	HyperModel  *nn.TwoStageNet
	HyperScaler *nn.FacetScaler

	DecisionModel  *nn.TwoStageNet
	DecisionScaler *nn.FacetScaler

	// mu serializes uncached analysis: the nn forward pass caches activations
	// in layer state and the clustering scratch below is shared, so the
	// pipeline itself is single-writer. Concurrent serving goes through the
	// plan cache, which only takes mu on a miss.
	mu      sync.Mutex
	scratch cluster.Scratch // reusable clustering buffers, guarded by mu

	cacheMu sync.Mutex
	cache   *planCache // nil until EnablePlanCache

	// Audit, when set, receives a decision-provenance record (and sampled
	// calibration probes) for every block decision Analyze ships, on track
	// AuditTrack; the attached drift monitor sees each analyzed network's
	// global feature vector. Nil keeps analysis bit-identical to a recorder-
	// free build. See internal/obs/audit and audit.go in this package.
	Audit      *audit.Recorder
	AuditTrack int

	// Baseline is the training-time distribution of Dataset A's raw global
	// feature vectors, filled by TrainFrameworkCheckpointed. It seeds drift
	// monitors and is persisted as the baseline.plqs run artifact.
	Baseline *audit.Baseline
}

// DeployConfig controls the offline deployment workflow.
type DeployConfig struct {
	NumNetworks int   // random networks for dataset generation
	Seed        int64 // master seed (datasets, splits, model init)

	HyperTrain    nn.TrainConfig
	DecisionTrain nn.TrainConfig
}

// DefaultDeployConfig returns a configuration that trains usable models in
// seconds (the full-scale 8000-network run of the paper is reached by
// raising NumNetworks; see cmd/trainer).
func DefaultDeployConfig() DeployConfig {
	ht := nn.DefaultTrainConfig()
	ht.Epochs = 80
	dt := nn.DefaultTrainConfig()
	dt.Epochs = 60
	return DeployConfig{NumNetworks: 400, Seed: 1, HyperTrain: ht, DecisionTrain: dt}
}

// DeployReport records the offline overhead and model quality of a
// deployment — the data behind Table 3 and the Fig. 3/4 accuracy claims.
type DeployReport struct {
	NumNetworks int
	NumBlocks   int // dataset B size

	DatasetTime       time.Duration
	HyperTrainTime    time.Duration
	DecisionTrainTime time.Duration

	HyperAccuracy          float64
	DecisionAccuracy       float64
	DecisionMeanLevelError float64

	// DecisionConfusion is the decision model's test-set confusion matrix
	// (rows = oracle levels, cols = predictions).
	DecisionConfusion *nn.Confusion
}

// Deploy runs the complete offline workflow on a platform: generate Datasets
// A and B, train the clustering hyperparameter prediction model and the
// target frequency decision model, and evaluate both on held-out test sets.
// No human intervention is needed — this is the paper's platform
// adaptability claim.
func Deploy(p *hw.Platform, cfg DeployConfig) (*Framework, *DeployReport, error) {
	if cfg.NumNetworks < 10 {
		return nil, nil, fmt.Errorf("core: need at least 10 networks, got %d", cfg.NumNetworks)
	}
	report := &DeployReport{NumNetworks: cfg.NumNetworks}

	t0 := time.Now()
	dsA, dsB := dataset.Generate(p, dataset.DefaultConfig(cfg.NumNetworks, cfg.Seed))
	report.DatasetTime = time.Since(t0)

	fw, err := TrainFramework(p, dsA, dsB, cfg, report)
	if err != nil {
		return nil, nil, err
	}
	return fw, report, nil
}

// TrainFramework trains both prediction models from pre-generated datasets
// (the cmd/datasetgen → cmd/trainer path) and fills the training fields of
// report (which may be zero-valued).
func TrainFramework(p *hw.Platform, dsA *dataset.DatasetA, dsB *dataset.DatasetB, cfg DeployConfig, report *DeployReport) (*Framework, error) {
	fw, err := TrainFrameworkCheckpointed(p, dsA, dsB, cfg, report, nil)
	if err != nil {
		return nil, err
	}
	return fw, nil
}

// ErrDrained is returned (wrapped) by TrainFrameworkCheckpointed when a
// graceful stop interrupted training; the checkpoint directory holds the
// state needed to resume exactly.
var ErrDrained = errors.New("core: training drained on stop request")

// CheckpointOptions threads crash safety through the framework trainer.
type CheckpointOptions struct {
	// Dir receives one state shard per model ("hyper.ckpt", "decision.ckpt").
	Dir *checkpoint.Dir
	// Every is the checkpoint cadence in epochs (default 1).
	Every int
	// Stop, when closed, requests a graceful drain; the call returns an
	// error wrapping ErrDrained.
	Stop <-chan struct{}
}

// TrainFrameworkCheckpointed is TrainFramework with optional crash safety:
// each model trains under nn.TrainResumable against ck.Dir, so a killed or
// drained run resumes bit-identically (the hyper model restores instantly
// once done, then the decision model continues). With a nil ck it is exactly
// TrainFramework.
func TrainFrameworkCheckpointed(p *hw.Platform, dsA *dataset.DatasetA, dsB *dataset.DatasetB, cfg DeployConfig, report *DeployReport, ck *CheckpointOptions) (*Framework, error) {
	if len(dsA.Samples) < 10 || len(dsB.Samples) < 10 {
		return nil, fmt.Errorf("core: datasets too small (%d network, %d block samples)",
			len(dsA.Samples), len(dsB.Samples))
	}
	report.NumBlocks = len(dsB.Samples)
	fw := &Framework{Platform: p, Grid: dsA.Grid}
	fw.Baseline = DatasetBaseline(dsA)

	trainCk := func(name string) *nn.TrainCheckpoint {
		if ck == nil || ck.Dir == nil {
			return nil
		}
		return &nn.TrainCheckpoint{Dir: ck.Dir, Name: name, Every: ck.Every, Stop: ck.Stop}
	}

	// Hyperparameter prediction model (Fig. 3).
	t0 := time.Now()
	trainA, valA, testA := nn.Split(dsA.Samples, cfg.Seed+1)
	trainA = balanceClasses(trainA, len(dsA.Grid))
	fw.HyperScaler = nn.FitFacetScaler(trainA)
	fw.HyperModel = nn.NewTwoStageNet(
		features.StructuralDim, features.StatsDim,
		[]int{48, 32}, []int{48, 24}, len(dsA.Grid), cfg.Seed+2)
	_, st, err := nn.TrainResumable(fw.HyperModel,
		fw.HyperScaler.Apply(trainA), fw.HyperScaler.Apply(valA), cfg.HyperTrain, trainCk("hyper"))
	if err != nil {
		return nil, fmt.Errorf("core: hyper model: %w", err)
	}
	if st.Drained {
		return nil, fmt.Errorf("core: hyper model: %w", ErrDrained)
	}
	report.HyperTrainTime = time.Since(t0)
	report.HyperAccuracy = nn.Accuracy(fw.HyperModel, fw.HyperScaler.Apply(testA))

	// Target frequency decision model (Fig. 4).
	t0 = time.Now()
	trainB, valB, testB := nn.Split(dsB.Samples, cfg.Seed+3)
	trainB = balanceClasses(trainB, dsB.NumLevels)
	fw.DecisionScaler = nn.FitFacetScaler(trainB)
	fw.DecisionModel = nn.NewTwoStageNet(
		features.StructuralDim, features.StatsDim,
		[]int{64, 32}, []int{32}, dsB.NumLevels, cfg.Seed+4)
	_, st, err = nn.TrainResumable(fw.DecisionModel,
		fw.DecisionScaler.Apply(trainB), fw.DecisionScaler.Apply(valB), cfg.DecisionTrain, trainCk("decision"))
	if err != nil {
		return nil, fmt.Errorf("core: decision model: %w", err)
	}
	if st.Drained {
		return nil, fmt.Errorf("core: decision model: %w", ErrDrained)
	}
	report.DecisionTrainTime = time.Since(t0)
	scaledTestB := fw.DecisionScaler.Apply(testB)
	report.DecisionAccuracy = nn.Accuracy(fw.DecisionModel, scaledTestB)
	report.DecisionMeanLevelError = nn.MeanLevelError(fw.DecisionModel, scaledTestB)
	report.DecisionConfusion = nn.ConfusionMatrix(fw.DecisionModel, scaledTestB, dsB.NumLevels)

	return fw, nil
}

// balanceClasses oversamples minority classes (up to 10x) so rare block
// kinds — the strongly memory-bound tails whose optimal levels sit at the
// bottom of the ladder — are not drowned out by the dominant compute-block
// class during decision-model training.
func balanceClasses(samples []nn.Sample, numClasses int) []nn.Sample {
	counts := make([]int, numClasses)
	for _, s := range samples {
		counts[s.Label]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	out := append([]nn.Sample(nil), samples...)
	for _, s := range samples {
		reps := maxCount/counts[s.Label] - 1
		if reps > 9 {
			reps = 9
		}
		for r := 0; r < reps; r++ {
			out = append(out, s)
		}
	}
	return out
}

// WorkflowTimings records the per-stage latency of one Analyze call — the
// workflow rows of Table 3.
type WorkflowTimings struct {
	FeatureExtraction time.Duration
	HyperPrediction   time.Duration
	Clustering        time.Duration
	Decision          time.Duration
}

// Analysis is the offline output for one model: its power view and the
// frequency plan preset at the DVFS instrumentation points.
type Analysis struct {
	Hyper   cluster.Hyperparams
	View    *cluster.PowerView
	Plan    *governor.FrequencyPlan
	Levels  []int // per-block target levels, parallel to View.Blocks
	Timings WorkflowTimings
}

// Analyze runs the full per-model workflow of §2.1.1: ① global feature
// extraction, ② hyperparameter prediction, ③ power behavior similarity
// clustering into a power view, ④ per-block global features through the
// decision model, ⑤ the preset frequency plan. With a plan cache attached
// (EnablePlanCache), repeat graphs return the memoized *Analysis — callers
// must treat a cached result as immutable. Analyze is safe for concurrent
// use either way.
func (f *Framework) Analyze(g *graph.Graph) (*Analysis, error) {
	if c := f.planCacheHandle(); c != nil {
		return c.analyze(f, g)
	}
	return f.analyzeUncached(g)
}

// analyzeUncached is the full pipeline; f.mu makes it single-writer (the nn
// forward pass and the clustering scratch both carry per-call state on f).
func (f *Framework) analyzeUncached(g *graph.Graph) (*Analysis, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	a := &Analysis{}

	t0 := time.Now()
	gl := features.ExtractGlobal(g)
	a.Timings.FeatureExtraction = time.Since(t0)

	t0 = time.Now()
	cell := f.HyperModel.Predict(
		f.HyperScaler.ApplyStructural(gl.Structural),
		f.HyperScaler.ApplyStats(gl.Stats))
	a.Hyper = f.Grid[cell]
	a.Timings.HyperPrediction = time.Since(t0)

	t0 = time.Now()
	view, err := cluster.BuildPowerViewScratch(g, a.Hyper, &f.scratch)
	if err != nil {
		return nil, fmt.Errorf("core: clustering %s: %w", g.Name, err)
	}
	a.View = view
	a.Timings.Clustering = time.Since(t0)

	t0 = time.Now()
	f.decide(g, a)
	f.guardPlan(g, a)
	a.Timings.Decision = time.Since(t0)

	f.auditAnalysis(g, gl, a)
	return a, nil
}

// guardPlan is a deployment safeguard on top of the paper's workflow: the
// predicted plan's cost is estimated with the analytic roofline/power model
// (the same class of estimate the offline workflow already relies on) and
// compared against the single-block fallback (the whole network at the
// decision model's whole-network level). If a mispredicted clustering or a
// bad per-block decision makes the plan materially worse, the fallback
// ships instead. Ablation variants (AnalyzeWholeNetwork/AnalyzeRandomBlocks)
// deliberately bypass the guard — they exist to measure raw behaviour.
func (f *Framework) guardPlan(g *graph.Graph, a *Analysis) {
	planE := f.estimatePlanEnergy(g, a.View, a.Levels)

	fb := &Analysis{View: cluster.WholeNetworkView(g)}
	f.decide(g, fb)
	fbE := f.estimatePlanEnergy(g, fb.View, fb.Levels)

	if planE > fbE*1.01 {
		a.View, a.Levels, a.Plan = fb.View, fb.Levels, fb.Plan
	}
}

// estimatePlanEnergy returns the analytic per-image energy of running each
// block of view at its assigned level, plus DVFS switch costs at level
// changes.
func (f *Framework) estimatePlanEnergy(g *graph.Graph, view *cluster.PowerView, levels []int) float64 {
	p := f.Platform
	total := 0.0
	for i, b := range view.Blocks {
		_, e := sim.SegmentCost(p, g, b.StartLayer, b.EndLayer, p.GPUFreqsHz[levels[i]])
		total += e
	}
	prev := levels[len(levels)-1]
	for _, lvl := range levels {
		if lvl != prev {
			_, e := p.SwitchCost(p.GPUFreqsHz[prev])
			total += e
		}
		prev = lvl
	}
	return total
}

// decide fills Levels and Plan from the decision model over a.View.
func (f *Framework) decide(g *graph.Graph, a *Analysis) {
	a.Levels = make([]int, a.View.NumBlocks())
	points := make(map[int]int, a.View.NumBlocks())
	for i, b := range a.View.Blocks {
		bg := features.ExtractBlockGlobal(g, b.StartLayer, b.EndLayer)
		lvl := f.DecisionModel.Predict(
			f.DecisionScaler.ApplyStructural(bg.Structural),
			f.DecisionScaler.ApplyStats(bg.Stats))
		a.Levels[i] = f.Platform.ClampGPULevel(lvl)
		points[b.StartLayer] = a.Levels[i]
	}
	a.Plan = &governor.FrequencyPlan{Model: g.Name, Points: points}
}

// AnalyzeWholeNetwork is the P-N ablation: no clustering — the decision
// model sets one frequency for the entire DNN.
func (f *Framework) AnalyzeWholeNetwork(g *graph.Graph) *Analysis {
	a := &Analysis{View: cluster.WholeNetworkView(g)}
	f.decide(g, a)
	return a
}

// AnalyzeRandomBlocks is the P-R ablation: clustering replaced by random
// contiguous partitioning; the decision model still sets block frequencies.
func (f *Framework) AnalyzeRandomBlocks(g *graph.Graph, rng *rand.Rand, maxBlocks int) *Analysis {
	a := &Analysis{View: cluster.RandomPowerView(g, rng, maxBlocks)}
	f.decide(g, a)
	return a
}

// OraclePlan bypasses the decision model: it assigns each block of the
// analysis's view its sweep-optimal level. Used to separate prediction error
// from clustering quality in diagnostics and ablation benches.
func (f *Framework) OraclePlan(g *graph.Graph, a *Analysis) *governor.FrequencyPlan {
	levels, _ := dataset.OracleLevels(f.Platform, g, a.View)
	points := make(map[int]int, len(levels))
	for i, b := range a.View.Blocks {
		points[b.StartLayer] = levels[i]
	}
	return &governor.FrequencyPlan{Model: g.Name, Points: points}
}
