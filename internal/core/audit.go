package core

import (
	"powerlens/internal/dataset"
	"powerlens/internal/features"
	"powerlens/internal/graph"
	"powerlens/internal/obs/audit"
	"powerlens/internal/sim"
)

// DatasetBaseline folds Dataset A's raw global feature vectors — the
// training-time distribution the hyper model saw, before scaling — into a
// drift baseline. Raw vectors are what Analyze's drift hook observes too, so
// live traffic and baseline live in the same (non-negative) feature space.
func DatasetBaseline(dsA *dataset.DatasetA) *audit.Baseline {
	b := audit.NewBaseline(features.GlobalDim)
	vec := make([]float64, 0, features.GlobalDim)
	for _, s := range dsA.Samples {
		vec = append(vec[:0], s.Structural...)
		vec = append(vec, s.Stats...)
		b.Observe(vec)
	}
	return b
}

// auditAnalysis emits decision provenance for one shipped analysis: the
// network's global feature vector goes to the drift monitor, and every block
// of the final view (post-guard) gets a decision record with the chosen vs
// runner-up level and the softmax margin between them. Sampled decisions
// (every cfg.ProbeEvery-th per model) additionally re-run the oracle
// frequency sweep via sim.CostTable and record agreement/regret.
//
// Called under f.mu from analyzeUncached, so the nn forward passes here are
// serialized like the rest of the pipeline. With the plan cache enabled,
// cache hits skip the pipeline entirely and therefore emit nothing — audited
// decision counts follow distinct analyses, not plan reuse (plan applications
// are the governors' records; see internal/governor).
func (f *Framework) auditAnalysis(g *graph.Graph, gl features.Global, a *Analysis) {
	rec := f.Audit
	if rec == nil {
		return
	}
	digest := graph.Digest(g)
	rec.DriftMonitor().Observe(gl.Vector())

	var ct *sim.CostTable // built lazily: only probed analyses pay for a sweep
	for i, b := range a.View.Blocks {
		bg := features.ExtractBlockGlobal(g, b.StartLayer, b.EndLayer)
		_, runner, margin := f.DecisionModel.PredictTop2(
			f.DecisionScaler.ApplyStructural(bg.Structural),
			f.DecisionScaler.ApplyStats(bg.Stats))
		chosen := a.Levels[i]
		probe := rec.RecordDecision(f.AuditTrack, g.Name, digest,
			i, chosen, f.Platform.ClampGPULevel(runner), margin, bg.Vector())
		if !probe {
			continue
		}
		if ct == nil {
			ct = sim.NewCostTable(f.Platform, g)
		}
		oracle, energies := ct.OptimalSegmentLevel(b.StartLayer, b.EndLayer)
		regret := 0.0
		if chosen >= 0 && chosen < len(energies) && energies[oracle] > 0 {
			regret = energies[chosen]/energies[oracle] - 1
		}
		rec.RecordProbe(f.AuditTrack, g.Name, digest, i, chosen, oracle, regret)
	}
}
