package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

// deployTest caches one small deployment per platform for all tests.
var deployCache = map[string]*Framework{}

func testFramework(t *testing.T, p *hw.Platform) *Framework {
	t.Helper()
	if fw, ok := deployCache[p.Name]; ok {
		return fw
	}
	cfg := DefaultDeployConfig()
	cfg.NumNetworks = 80
	cfg.HyperTrain.Epochs = 40
	cfg.DecisionTrain.Epochs = 40
	fw, report, err := Deploy(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.NumBlocks < cfg.NumNetworks {
		t.Fatalf("dataset B too small: %d", report.NumBlocks)
	}
	deployCache[p.Name] = fw
	return fw
}

func TestDeployProducesUsableModels(t *testing.T) {
	p := hw.TX2()
	cfg := DefaultDeployConfig()
	cfg.NumNetworks = 80
	cfg.HyperTrain.Epochs = 40
	cfg.DecisionTrain.Epochs = 40
	fw, report, err := Deploy(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	deployCache[p.Name] = fw
	// With a small training set we assert usefulness, not the paper's
	// full-scale 92.6%/94.2% (see cmd/trainer for the full run).
	if report.DecisionAccuracy < 0.55 {
		t.Fatalf("decision accuracy = %.3f, model unusable", report.DecisionAccuracy)
	}
	if report.DecisionMeanLevelError > 2.0 {
		t.Fatalf("decision mean level error = %.2f", report.DecisionMeanLevelError)
	}
	if report.HyperAccuracy < 0.3 {
		t.Fatalf("hyper accuracy = %.3f, model unusable", report.HyperAccuracy)
	}
	if report.DatasetTime <= 0 || report.HyperTrainTime <= 0 || report.DecisionTrainTime <= 0 {
		t.Fatal("report timings missing")
	}
}

func TestDeployRejectsTinyConfig(t *testing.T) {
	if _, _, err := Deploy(hw.TX2(), DeployConfig{NumNetworks: 3}); err == nil {
		t.Fatal("expected error for tiny config")
	}
}

func TestAnalyzeWorkflow(t *testing.T) {
	fw := testFramework(t, hw.TX2())
	for _, name := range []string{"resnet152", "vit_base_16", "alexnet"} {
		g := models.MustBuild(name)
		a, err := fw.Analyze(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.View.NumBlocks() < 1 {
			t.Fatalf("%s: empty view", name)
		}
		if len(a.Levels) != a.View.NumBlocks() {
			t.Fatalf("%s: levels/blocks mismatch", name)
		}
		if a.Plan.Model != name || a.Plan.NumPoints() != a.View.NumBlocks() {
			t.Fatalf("%s: plan inconsistent", name)
		}
		for _, lvl := range a.Levels {
			if lvl < 0 || lvl >= fw.Platform.NumGPULevels() {
				t.Fatalf("%s: level %d out of ladder", name, lvl)
			}
		}
		tm := a.Timings
		if tm.FeatureExtraction < 0 || tm.Clustering <= 0 {
			t.Fatalf("%s: timings not recorded: %+v", name, tm)
		}
	}
}

// The headline claim: a PowerLens plan must beat the BiM-style fmax strategy
// on energy efficiency for a large model.
func TestPowerLensPlanBeatsMaxFrequency(t *testing.T) {
	for _, p := range hw.Platforms() {
		fw := testFramework(t, p)
		g := models.MustBuild("resnet152")
		a, err := fw.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		pl := sim.NewExecutor(p, governor.NewPowerLens(a.Plan)).RunTask(g, 10)
		maxStatic := sim.NewExecutor(p, governor.NewStatic(p.NumGPULevels()-1)).RunTask(g, 10)
		if pl.EE() <= maxStatic.EE() {
			t.Fatalf("%s: PowerLens EE %.4f <= fmax EE %.4f", p.Name, pl.EE(), maxStatic.EE())
		}
	}
}

// The plan should land close to the oracle per-block plan.
func TestPlanNearOracle(t *testing.T) {
	p := hw.TX2()
	fw := testFramework(t, p)
	g := models.MustBuild("resnet152")
	a, err := fw.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	oracle := fw.OraclePlan(g, a)
	plEE := sim.NewExecutor(p, governor.NewPowerLens(a.Plan)).RunTask(g, 10).EE()
	orEE := sim.NewExecutor(p, governor.NewPowerLens(oracle)).RunTask(g, 10).EE()
	if plEE < orEE*0.80 {
		t.Fatalf("model plan EE %.4f < 80%% of oracle EE %.4f", plEE, orEE)
	}
}

func TestAblationViews(t *testing.T) {
	fw := testFramework(t, hw.TX2())
	g := models.MustBuild("resnet34")
	pn := fw.AnalyzeWholeNetwork(g)
	if pn.View.NumBlocks() != 1 || pn.Plan.NumPoints() != 1 {
		t.Fatal("P-N must be a single block")
	}
	pr := fw.AnalyzeRandomBlocks(g, rand.New(rand.NewSource(5)), 8)
	if pr.View.NumBlocks() < 1 || pr.View.NumBlocks() > 8 {
		t.Fatalf("P-R blocks = %d", pr.View.NumBlocks())
	}
	if len(pr.Levels) != pr.View.NumBlocks() {
		t.Fatal("P-R levels mismatch")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	fw := testFramework(t, hw.TX2())
	path := filepath.Join(t.TempDir(), "fw.json")
	if err := fw.Save(path); err != nil {
		t.Fatal(err)
	}
	fw2, err := LoadFramework(path)
	if err != nil {
		t.Fatal(err)
	}
	if fw2.Platform.Name != "TX2" || len(fw2.Grid) != len(fw.Grid) {
		t.Fatal("roundtrip lost platform/grid")
	}
	// Loaded model must produce identical plans.
	g := models.MustBuild("googlenet")
	a1, err := fw.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := fw2.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if a1.View.NumBlocks() != a2.View.NumBlocks() {
		t.Fatal("loaded framework clusters differently")
	}
	for i := range a1.Levels {
		if a1.Levels[i] != a2.Levels[i] {
			t.Fatal("loaded framework decides differently")
		}
	}
}

func TestLoadFrameworkErrors(t *testing.T) {
	if _, err := LoadFramework(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestDeployReportConfusion(t *testing.T) {
	fw := testFramework(t, hw.TX2())
	_ = fw // framework cached; re-deploy small to get a fresh report
	cfg := DefaultDeployConfig()
	cfg.NumNetworks = 30
	cfg.HyperTrain.Epochs = 15
	cfg.DecisionTrain.Epochs = 15
	_, report, err := Deploy(hw.AGX(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.DecisionConfusion == nil {
		t.Fatal("confusion matrix missing from report")
	}
	if got := report.DecisionConfusion.Accuracy(); got != report.DecisionAccuracy {
		t.Fatalf("confusion accuracy %.4f != reported %.4f", got, report.DecisionAccuracy)
	}
}
