package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerlens/internal/hw"
)

// savedFramework writes one trained TX2 framework to disk and returns both
// the path and the raw bytes so corruption tests can mutate a known-good
// file.
func savedFramework(t *testing.T) (string, []byte) {
	t.Helper()
	fw := testFramework(t, hw.TX2())
	path := filepath.Join(t.TempDir(), "fw.json")
	if err := fw.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

// writeCorrupt writes mutated framework bytes and asserts LoadFramework
// rejects them with an error mentioning want.
func loadCorrupt(t *testing.T, dir, name string, data []byte, want string) {
	t.Helper()
	path := filepath.Join(dir, name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFramework(path)
	if err == nil {
		t.Fatalf("%s: LoadFramework accepted corrupt file", name)
	}
	if want != "" && !strings.Contains(err.Error(), want) {
		t.Fatalf("%s: error %q does not mention %q", name, err, want)
	}
}

func TestLoadFrameworkRejectsTruncatedJSON(t *testing.T) {
	_, raw := savedFramework(t)
	dir := t.TempDir()
	// Chop the file mid-object: a partial JSON document must not decode.
	loadCorrupt(t, dir, "truncated", raw[:len(raw)/2], "decode")
	// Empty file.
	loadCorrupt(t, dir, "empty", nil, "decode")
	// Non-JSON noise.
	loadCorrupt(t, dir, "noise", []byte("not a framework at all\n"), "decode")
	// Valid JSON followed by trailing garbage must also be rejected.
	loadCorrupt(t, dir, "trailing", append(append([]byte{}, raw...), []byte(`{"oops":1}`)...), "trailing data")
}

func TestLoadFrameworkRejectsWrongShapeWeights(t *testing.T) {
	_, raw := savedFramework(t)
	dir := t.TempDir()

	// Decode into a generic tree so individual fields can be corrupted
	// without depending on struct layout.
	corrupt := func(name, want string, mutate func(ff map[string]any)) {
		t.Helper()
		var ff map[string]any
		if err := json.Unmarshal(raw, &ff); err != nil {
			t.Fatal(err)
		}
		mutate(ff)
		out, err := json.Marshal(ff)
		if err != nil {
			t.Fatal(err)
		}
		loadCorrupt(t, dir, name, out, want)
	}

	layer0 := func(ff map[string]any, model string) map[string]any {
		front := ff[model].(map[string]any)["Front"].([]any)
		return front[0].(map[string]any)
	}

	// Weight matrix whose declared shape disagrees with its backing data.
	corrupt("short-data", "backed by", func(ff map[string]any) {
		w := layer0(ff, "hyper_model")["W"].(map[string]any)
		data := w["Data"].([]any)
		w["Data"] = data[:len(data)-1]
	})
	// Declared shape inflated past the data.
	corrupt("bad-rows", "", func(ff map[string]any) {
		w := layer0(ff, "decision_model")["W"].(map[string]any)
		w["Rows"] = w["Rows"].(float64) + 3
	})
	// Layer widths that do not chain.
	corrupt("bad-cols", "inputs", func(ff map[string]any) {
		w := layer0(ff, "hyper_model")["W"].(map[string]any)
		rows := int(w["Rows"].(float64))
		cols := int(w["Cols"].(float64)) + 1
		w["Cols"] = cols
		data := make([]any, rows*cols)
		for i := range data {
			data[i] = 0.1
		}
		w["Data"] = data
	})
	// Bias vector length mismatch.
	corrupt("bad-bias", "biases", func(ff map[string]any) {
		l := layer0(ff, "hyper_model")
		b := l["B"].([]any)
		l["B"] = b[:len(b)-1]
	})
	// Degenerate empty matrix.
	corrupt("zero-shape", "degenerate", func(ff map[string]any) {
		w := layer0(ff, "hyper_model")["W"].(map[string]any)
		w["Rows"], w["Cols"], w["Data"] = 0, 0, []any{}
	})
	// Missing model entirely.
	corrupt("nil-model", "missing model state", func(ff map[string]any) {
		ff["decision_model"] = nil
	})
	// Scaler whose feature count disagrees with the model facet width.
	corrupt("bad-scaler", "features", func(ff map[string]any) {
		sc := ff["hyper_scaler"].(map[string]any)["Structural"].(map[string]any)
		means := sc["Means"].([]any)
		sc["Means"] = means[:len(means)-1]
		stds := sc["Stds"].([]any)
		sc["Stds"] = stds[:len(stds)-1]
	})
	// Empty hyperparameter grid.
	corrupt("empty-grid", "grid", func(ff map[string]any) {
		ff["grid"] = []any{}
	})
}
