package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"powerlens/internal/cluster"
	"powerlens/internal/dataset"
	"powerlens/internal/features"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/nn"
	"powerlens/internal/obs"
)

// lightFramework builds a deployment-free framework (seeded untrained models
// of the production shapes): Analyze outputs are arbitrary but deterministic,
// which is all the cache-layer tests need, without minutes of training.
func lightFramework(p *hw.Platform, seed int64) *Framework {
	grid := dataset.DefaultGrid()
	return &Framework{
		Platform: p,
		Grid:     grid,
		HyperModel: nn.NewTwoStageNet(features.StructuralDim, features.StatsDim,
			[]int{48, 32}, []int{48, 24}, len(grid), seed),
		HyperScaler: nn.FitFacetScaler(synthSamples(64, len(grid), seed+1)),
		DecisionModel: nn.NewTwoStageNet(features.StructuralDim, features.StatsDim,
			[]int{64, 32}, []int{32}, p.NumGPULevels(), seed+2),
		DecisionScaler: nn.FitFacetScaler(synthSamples(64, p.NumGPULevels(), seed+3)),
	}
}

func synthSamples(n, classes int, seed int64) []nn.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]nn.Sample, n)
	for i := range out {
		s := nn.Sample{
			Structural: make([]float64, features.StructuralDim),
			Stats:      make([]float64, features.StatsDim),
			Label:      rng.Intn(classes),
		}
		for j := range s.Structural {
			s.Structural[j] = rng.NormFloat64()
		}
		for j := range s.Stats {
			s.Stats[j] = rng.NormFloat64()
		}
		out[i] = s
	}
	return out
}

// stripTimings zeroes the wall-clock stage timings, the only legitimately
// run-dependent field of an Analysis.
func stripTimings(a *Analysis) Analysis {
	c := *a
	c.Timings = WorkflowTimings{}
	return c
}

func TestCachedAnalyzeBitIdentical(t *testing.T) {
	p := hw.TX2()
	plain := lightFramework(p, 7)
	cached := lightFramework(p, 7)
	cached.EnablePlanCache(0, nil)

	for _, name := range []string{"alexnet", "resnet34", "vit_base_32"} {
		g := models.MustBuild(name)
		want, err := plain.Analyze(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		miss, err := cached.Analyze(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hit, err := cached.Analyze(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if hit != miss {
			t.Fatalf("%s: cache hit returned a different object than the miss", name)
		}
		if !reflect.DeepEqual(stripTimings(want), stripTimings(hit)) {
			t.Fatalf("%s: cached analysis differs from uncached:\nuncached %+v\ncached   %+v",
				name, stripTimings(want), stripTimings(hit))
		}
	}
	st := cached.PlanCacheStats()
	if st.Misses != 3 || st.Hits != 3 {
		t.Fatalf("stats = %+v, want 3 misses / 3 hits", st)
	}
}

func TestPlanCacheSpeedupAndCounters(t *testing.T) {
	p := hw.TX2()
	fw := lightFramework(p, 7)
	g := models.MustBuild("resnet34")

	// Uncached latency: best of several full pipeline runs.
	uncached := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := fw.Analyze(g); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < uncached {
			uncached = d
		}
	}

	reg := obs.NewRegistry()
	fw.EnablePlanCache(8, reg)
	if _, err := fw.Analyze(g); err != nil {
		t.Fatal(err)
	}
	const hits = 2000
	cached := time.Duration(1<<63 - 1)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for i := 0; i < hits; i++ {
			if _, err := fw.Analyze(g); err != nil {
				t.Fatal(err)
			}
		}
		if d := time.Since(start) / hits; d < cached {
			cached = d
		}
	}
	if cached*20 > uncached {
		t.Fatalf("cached Analyze %v not >= 20x faster than uncached %v", cached, uncached)
	}

	st := fw.PlanCacheStats()
	if st.Misses != 1 || st.Hits != 3*hits {
		t.Fatalf("stats = %+v, want 1 miss / %d hits", st, 3*hits)
	}
	counts := map[string]float64{}
	for _, fam := range reg.Snapshot() {
		for _, s := range fam.Series {
			counts[fam.Name] += s.Value
		}
	}
	if counts["core_plan_cache_hits_total"] != float64(st.Hits) ||
		counts["core_plan_cache_misses_total"] != float64(st.Misses) {
		t.Fatalf("obs counters %v disagree with stats %+v", counts, st)
	}
}

func TestPlanCacheSingleFlight(t *testing.T) {
	p := hw.TX2()
	fw := lightFramework(p, 7)
	fw.EnablePlanCache(8, nil)
	g := models.MustBuild("resnet34")

	const callers = 16
	results := make([]*Analysis, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := fw.Analyze(g)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = a
		}(i)
	}
	wg.Wait()
	st := fw.PlanCacheStats()
	if st.Misses != 1 {
		t.Fatalf("%d concurrent identical Analyze calls ran the pipeline %d times, want 1 (single-flight)",
			callers, st.Misses)
	}
	if st.Hits != callers-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers received different result objects")
		}
	}
}

func TestPlanCacheConcurrentDistinctGraphs(t *testing.T) {
	p := hw.TX2()
	fw := lightFramework(p, 7)
	fw.EnablePlanCache(32, nil)

	names := models.Names()
	var wg sync.WaitGroup
	for round := 0; round < 2; round++ {
		for _, name := range names {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				if _, err := fw.Analyze(models.MustBuild(name)); err != nil {
					t.Errorf("%s: %v", name, err)
				}
			}(name)
		}
	}
	wg.Wait()
	st := fw.PlanCacheStats()
	// Round two rebuilds every graph; the digest must land on round one's
	// entries, so misses stay at one per distinct model.
	if st.Misses != uint64(len(names)) {
		t.Fatalf("misses = %d, want %d (one per distinct model)", st.Misses, len(names))
	}
	if st.Size != len(names) {
		t.Fatalf("cache size = %d, want %d", st.Size, len(names))
	}
}

func TestPlanCacheBoundedEviction(t *testing.T) {
	p := hw.TX2()
	fw := lightFramework(p, 7)
	fw.EnablePlanCache(2, nil)

	names := []string{"alexnet", "resnet34", "vit_base_32", "googlenet"}
	for _, name := range names {
		if _, err := fw.Analyze(models.MustBuild(name)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	st := fw.PlanCacheStats()
	if st.Size > 2 {
		t.Fatalf("cache size %d exceeds capacity 2", st.Size)
	}
	if st.Evictions != uint64(len(names)-2) {
		t.Fatalf("evictions = %d, want %d", st.Evictions, len(names)-2)
	}
	// LRU: the most recent two survive; the oldest was evicted and misses.
	if _, err := fw.Analyze(models.MustBuild("googlenet")); err != nil {
		t.Fatal(err)
	}
	if got := fw.PlanCacheStats(); got.Hits != st.Hits+1 {
		t.Fatalf("most-recent entry missed: %+v", got)
	}
	if _, err := fw.Analyze(models.MustBuild("alexnet")); err != nil {
		t.Fatal(err)
	}
	if got := fw.PlanCacheStats(); got.Misses != st.Misses+1 {
		t.Fatalf("evicted entry unexpectedly hit: %+v", got)
	}
}

func TestConfigDigestDistinguishesDeployments(t *testing.T) {
	p := hw.TX2()
	a := lightFramework(p, 7)
	b := lightFramework(p, 7)
	if a.ConfigDigest() != b.ConfigDigest() {
		t.Fatal("identically-built frameworks must share a config digest")
	}
	c := lightFramework(p, 8)
	if a.ConfigDigest() == c.ConfigDigest() {
		t.Fatal("differently-seeded frameworks must not share a config digest")
	}
}

// TestAnalyzeScratchReuse pins the cluster.Scratch fix: repeat uncached
// Analyze calls must reuse the framework's clustering scratch instead of
// reallocating DBSCAN working storage per call.
func TestAnalyzeScratchReuse(t *testing.T) {
	p := hw.TX2()
	fw := lightFramework(p, 7)
	g := models.MustBuild("resnet34")

	warm := func() {
		if _, err := fw.Analyze(g); err != nil {
			t.Fatal(err)
		}
	}
	warm()

	perCall := testing.AllocsPerRun(20, warm)

	// The same clustering through a cold scratch every call.
	a, err := fw.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	perCold := testing.AllocsPerRun(20, func() {
		if _, err := cluster.BuildPowerView(g, a.Hyper); err != nil {
			t.Fatal(err)
		}
	})
	perWarm := testing.AllocsPerRun(20, func() {
		if _, err := cluster.BuildPowerViewScratch(g, a.Hyper, &fw.scratch); err != nil {
			t.Fatal(err)
		}
	})
	if perWarm >= perCold {
		t.Fatalf("scratch reuse saves nothing: warm %v allocs vs cold %v", perWarm, perCold)
	}
	t.Logf("allocs/call: warm Analyze %.0f, cold clustering %.0f, warm clustering %.0f",
		perCall, perCold, perWarm)
}
