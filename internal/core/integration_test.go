package core

import (
	"testing"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

// TestAnalyzeEntireZoo pushes every registry model (the Table 1 set plus
// the extra zoo members) through the full workflow on both platforms and
// checks the structural invariants of the resulting plans.
func TestAnalyzeEntireZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-zoo integration test")
	}
	for _, p := range hw.Platforms() {
		fw := testFramework(t, p)
		for _, name := range models.AllNames() {
			g := models.MustBuild(name)
			a, err := fw.Analyze(g)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, name, err)
			}
			// The view must partition the graph.
			if a.View.Blocks[0].StartLayer != 0 {
				t.Fatalf("%s/%s: view does not start at layer 0", p.Name, name)
			}
			for i := 1; i < len(a.View.Blocks); i++ {
				if a.View.Blocks[i].StartLayer != a.View.Blocks[i-1].EndLayer+1 {
					t.Fatalf("%s/%s: view not contiguous", p.Name, name)
				}
			}
			if last := a.View.Blocks[len(a.View.Blocks)-1].EndLayer; last != len(g.Layers)-1 {
				t.Fatalf("%s/%s: view ends at %d of %d", p.Name, name, last, len(g.Layers)-1)
			}
			// Every preset level must be on the ladder.
			for layer, lvl := range a.Plan.Points {
				if layer < 0 || layer >= len(g.Layers) {
					t.Fatalf("%s/%s: plan references layer %d", p.Name, name, layer)
				}
				if lvl < 0 || lvl >= p.NumGPULevels() {
					t.Fatalf("%s/%s: plan level %d off ladder", p.Name, name, lvl)
				}
			}
		}
	}
}

// TestZooEEGainsOverFmax verifies the headline claim holds for every
// registry model, not just the Table 1 set.
func TestZooEEGainsOverFmax(t *testing.T) {
	if testing.Short() {
		t.Skip("full-zoo integration test")
	}
	p := hw.TX2()
	fw := testFramework(t, p)
	for _, name := range models.AllNames() {
		g := models.MustBuild(name)
		a, err := fw.Analyze(g)
		if err != nil {
			t.Fatal(err)
		}
		pl := sim.NewExecutor(p, governor.NewPowerLens(a.Plan)).RunTask(g, 10)
		fmax := sim.NewExecutor(p, governor.NewStatic(p.NumGPULevels()-1)).RunTask(g, 10)
		if pl.EE() <= fmax.EE() {
			t.Errorf("%s: PowerLens EE %.4f <= fmax %.4f", name, pl.EE(), fmax.EE())
		}
	}
}
