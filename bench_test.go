package powerlens

// Benchmarks regenerating each table and figure of the paper's evaluation
// (DESIGN.md §4), plus ablation benches for the design choices in §5. Each
// experiment bench reports the paper's headline metric via b.ReportMetric so
// `go test -bench=. -benchmem` doubles as a results summary:
//
//	BenchmarkTable1TX2/AGX      — EE gain vs BiM (EEgain_BiM_%)
//	BenchmarkTable2             — P-R / P-N EE deltas
//	BenchmarkTable3Workflow     — per-stage workflow latency
//	BenchmarkFig1               — bursty-flow energy, reactive vs preset
//	BenchmarkFig5TX2/AGX        — task-flow EE per method
//	BenchmarkModelTraining      — offline deployment time + model accuracy
//	BenchmarkSwitchOverhead     — §3.3 microbenchmark
//	BenchmarkAblation*          — distance metric, θ, switch granularity
//	Benchmark<component>        — micro-benchmarks of the pipeline stages

import (
	"math"
	"sync"
	"testing"

	"powerlens/internal/cluster"
	"powerlens/internal/core"
	"powerlens/internal/dataset"
	"powerlens/internal/experiments"
	"powerlens/internal/features"
	"powerlens/internal/governor"
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/nn"
	"powerlens/internal/obs"
	"powerlens/internal/sim"
	"powerlens/internal/tensor"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

// env deploys a shared small-scale environment for the experiment benches.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		cfg := core.DefaultDeployConfig()
		cfg.NumNetworks = 120
		cfg.HyperTrain.Epochs = 40
		cfg.DecisionTrain.Epochs = 40
		benchEnv, benchEnvErr = experiments.NewEnv(cfg)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

func benchTable1(b *testing.B, p *hw.Platform) {
	e := env(b)
	var bim, fpgg, fpgcg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(e, p)
		if err != nil {
			b.Fatal(err)
		}
		bim, fpgg, fpgcg = experiments.Averages(rows)
	}
	b.ReportMetric(bim*100, "EEgain_BiM_%")
	b.ReportMetric(fpgg*100, "EEgain_FPG-G_%")
	b.ReportMetric(fpgcg*100, "EEgain_FPG-CG_%")
}

// BenchmarkTable1TX2 regenerates Table 1(a): EE gains on TX2 (paper
// averages: BiM 57.85%, FPG-G 18.39%, FPG-CG 13.53%).
func BenchmarkTable1TX2(b *testing.B) { benchTable1(b, hw.TX2()) }

// BenchmarkTable1AGX regenerates Table 1(b): EE gains on AGX (paper
// averages: BiM 119.42%, FPG-G 27.31%, FPG-CG 15.97%).
func BenchmarkTable1AGX(b *testing.B) { benchTable1(b, hw.AGX()) }

// BenchmarkTable2 regenerates Table 2: the P-R / P-N clustering ablation
// (paper TX2 averages: P-R −42.60%, P-N −15.17%).
func BenchmarkTable2(b *testing.B) {
	e := env(b)
	var pr, pn float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(e, hw.TX2(), 3)
		if err != nil {
			b.Fatal(err)
		}
		pr, pn = experiments.Table2Averages(rows)
	}
	b.ReportMetric(pr*100, "P-R_%")
	b.ReportMetric(pn*100, "P-N_%")
}

// BenchmarkTable3Workflow regenerates Table 3's workflow rows: per-stage
// offline latency of the Analyze pipeline (paper: feature extraction 10 s,
// prediction 320 ms, clustering 60 s, per-block decision 220 ms on TX2).
func BenchmarkTable3Workflow(b *testing.B) {
	e := env(b)
	var d *experiments.Table3Data
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Table3(e, hw.TX2())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.FeatureExtraction.Seconds()*1e3, "feat_ms")
	b.ReportMetric(d.HyperPrediction.Seconds()*1e3, "hyper_ms")
	b.ReportMetric(d.Clustering.Seconds()*1e3, "cluster_ms")
	b.ReportMetric(d.DecisionPerBlock.Seconds()*1e3, "decide_ms")
}

// BenchmarkFig1 regenerates Figure 1: the bursty two-task flow comparing a
// reactive governor's ping-pong/lag against PowerLens's preset points.
func BenchmarkFig1(b *testing.B) {
	e := env(b)
	var traces []experiments.Fig1Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		traces, err = experiments.Fig1(e, hw.TX2())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, tr := range traces {
		b.ReportMetric(tr.EnergyJ, tr.Method+"_J")
	}
}

func benchFig5(b *testing.B, p *hw.Platform) {
	e := env(b)
	var results []experiments.Fig5Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.Fig5(e, p, 10, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(r.EE, r.Method+"_EE")
	}
}

// BenchmarkFig5TX2 regenerates Figure 5 on TX2 (paper: PowerLens EE gains of
// 36.24%, 28.49%, 94.48% vs FPG-G, FPG-CG, BiM).
func BenchmarkFig5TX2(b *testing.B) { benchFig5(b, hw.TX2()) }

// BenchmarkFig5AGX regenerates Figure 5 on AGX (paper: 40.75%, 22.62%,
// 102.60%).
func BenchmarkFig5AGX(b *testing.B) { benchFig5(b, hw.AGX()) }

// BenchmarkModelTraining measures the offline deployment workflow (dataset
// generation + training both models; paper Table 3: 20h/6h on TX2) and
// reports the Fig. 3/4 test accuracies (paper: 92.6% / 94.2%).
func BenchmarkModelTraining(b *testing.B) {
	var report *core.DeployReport
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultDeployConfig()
		cfg.NumNetworks = 60
		cfg.HyperTrain.Epochs = 30
		cfg.DecisionTrain.Epochs = 30
		var err error
		_, report, err = core.Deploy(hw.TX2(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(report.HyperAccuracy*100, "hyperAcc_%")
	b.ReportMetric(report.DecisionAccuracy*100, "decisionAcc_%")
}

// BenchmarkSwitchOverhead is the §3.3 microbenchmark: 100 DVFS level
// changes (paper: 50 ms).
func BenchmarkSwitchOverhead(b *testing.B) {
	p := hw.TX2()
	var total float64
	for i := 0; i < b.N; i++ {
		total = experiments.SwitchOverhead(p, 100).Seconds() * 1e3
	}
	b.ReportMetric(total, "total_ms")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationDistance compares Mahalanobis against plain Euclidean
// distance in the clustering stage (design choice 1): same pipeline, the
// covariance whitening replaced by the identity metric.
func BenchmarkAblationDistance(b *testing.B) {
	g := models.MustBuild("resnet152")
	x, _ := features.ScaledDepthwise(g)
	alpha, lambda := cluster.DefaultDistanceParams()

	b.Run("mahalanobis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.BlendedDistance(x, alpha, lambda)
		}
	})
	b.Run("euclidean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MahalanobisAll(x, tensor.Identity(x.Cols))
		}
	})
}

// BenchmarkAblationPerfWeight sweeps the θ exponent of the per-block
// objective E·t^θ (design choice: pure-EE targets vs performance-weighted
// targets), reporting the EE and latency of the resulting whole-network
// plan for ResNet-152 on TX2.
func BenchmarkAblationPerfWeight(b *testing.B) {
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	n := len(g.Layers) - 1
	for _, theta := range []float64{0, 0.4, 1.0} {
		b.Run(map[float64]string{0: "theta0", 0.4: "theta0.4", 1.0: "theta1"}[theta], func(b *testing.B) {
			var ee, slowdown float64
			for i := 0; i < b.N; i++ {
				// Inline θ-sweep (sim.PerfWeight is the framework default;
				// the ablation recomputes scores explicitly).
				best := 0
				bestScore := math.Inf(1)
				for lvl, f := range p.GPUFreqsHz {
					t, e := sim.SegmentCost(p, g, 0, n, f)
					score := e * math.Pow(t.Seconds(), theta)
					if score < bestScore {
						best, bestScore = lvl, score
					}
				}
				tOpt, eOpt := sim.SegmentCost(p, g, 0, n, p.GPUFreqsHz[best])
				tMax, _ := sim.SegmentCost(p, g, 0, n, p.MaxGPUFreq())
				ee = 1 / eOpt
				slowdown = tOpt.Seconds() / tMax.Seconds()
			}
			b.ReportMetric(ee, "EE_img/J")
			b.ReportMetric(slowdown, "slowdown_x")
		})
	}
}

// BenchmarkSwitchGranularity compares per-block against per-layer DVFS
// switching (design choice 6: block-granular instrumentation amortizes the
// switch stall; per-layer switching drowns in it).
func BenchmarkSwitchGranularity(b *testing.B) {
	p := hw.TX2()
	g := models.MustBuild("resnet34")
	e := env(b)
	a, err := e.Frameworks[p.Name].Analyze(g)
	if err != nil {
		b.Fatal(err)
	}

	// Per-layer plan: every layer is its own instrumentation point,
	// alternating two adjacent levels to force a switch at each layer.
	perLayer := &governor.FrequencyPlan{Model: g.Name, Points: map[int]int{}}
	for i := range g.Layers {
		perLayer.Points[i] = 5 + i%2
	}

	b.Run("per-block", func(b *testing.B) {
		var ee float64
		for i := 0; i < b.N; i++ {
			ee = sim.NewExecutor(p, governor.NewPowerLens(a.Plan)).RunTask(g, 5).EE()
		}
		b.ReportMetric(ee, "EE_img/J")
	})
	b.Run("per-layer", func(b *testing.B) {
		var ee float64
		for i := 0; i < b.N; i++ {
			ee = sim.NewExecutor(p, governor.NewPowerLens(perLayer)).RunTask(g, 5).EE()
		}
		b.ReportMetric(ee, "EE_img/J")
	})
}

// --- Pipeline micro-benchmarks ---

// BenchmarkFeatureExtraction measures the depthwise + global extractors.
func BenchmarkFeatureExtraction(b *testing.B) {
	g := models.MustBuild("densenet201")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.ScaledDepthwise(g)
		features.ExtractGlobal(g)
	}
}

// BenchmarkClustering measures Algorithm 1 end-to-end on ResNet-152.
func BenchmarkClustering(b *testing.B) {
	g := models.MustBuild("resnet152")
	alpha, lambda := cluster.DefaultDistanceParams()
	hp := cluster.Hyperparams{Eps: 0.3, MinPts: 4, Alpha: alpha, Lambda: lambda}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.BuildPowerView(g, hp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutor measures simulated inference throughput (layers/op
// accounting dominates).
func BenchmarkExecutor(b *testing.B) {
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	ctl := governor.NewStatic(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.NewExecutor(p, ctl).RunTask(g, 1)
	}
}

// BenchmarkOracleSweep measures one full-block frequency sweep.
func BenchmarkOracleSweep(b *testing.B) {
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.OptimalSegmentLevel(p, g, 0, len(g.Layers)-1)
	}
}

// BenchmarkNNTrainingEpoch measures one decision-model training epoch on a
// synthetic block dataset.
func BenchmarkNNTrainingEpoch(b *testing.B) {
	p := hw.TX2()
	dsA, dsB := dataset.Generate(p, dataset.DefaultConfig(20, 5))
	_ = dsA
	net := nn.NewTwoStageNet(features.StructuralDim, features.StatsDim,
		[]int{64, 32}, []int{32}, dsB.NumLevels, 1)
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.Patience = 0
	train, val, _ := nn.Split(dsB.Samples, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.Train(net, train, val, cfg)
	}
}

// BenchmarkModelBuilders measures graph construction of every evaluation
// network.
func BenchmarkModelBuilders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range models.Names() {
			models.MustBuild(name)
		}
	}
}

// BenchmarkZTT characterizes the extra zTT-style learning-based baseline
// (related work [6]) against PowerLens on a sustained task.
func BenchmarkZTT(b *testing.B) {
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	var ee float64
	for i := 0; i < b.N; i++ {
		ee = sim.NewExecutor(p, governor.NewZTT(3)).RunTask(g, 30).EE()
	}
	b.ReportMetric(ee, "EE_img/J")
}

// BenchmarkBatchSweep measures the §5 batching extension's sweep and
// reports the chosen operating point's EE.
func BenchmarkBatchSweep(b *testing.B) {
	p := hw.TX2()
	g := models.MustBuild("vgg19")
	var best sim.BatchPoint
	for i := 0; i < b.N; i++ {
		best, _ = sim.OptimalBatch(p, g, 32, 0)
	}
	b.ReportMetric(best.EE, "EE_img/J")
	b.ReportMetric(float64(best.Batch), "batch")
}

// BenchmarkThermalStudy measures the opt-in thermal study (sustained
// throttling comparison).
func BenchmarkThermalStudy(b *testing.B) {
	e := env(b)
	var rows []experiments.ThermalRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ThermalStudy(e, hw.TX2(), 300)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PeakTempC, r.Method+"_peakC")
	}
}

// BenchmarkExtensions measures the §5 extension comparison (CPU DVFS and
// batching over the 12 models).
func BenchmarkExtensions(b *testing.B) {
	e := env(b)
	var rows []experiments.ExtensionRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Extensions(e, hw.TX2())
		if err != nil {
			b.Fatal(err)
		}
	}
	var cg float64
	for _, r := range rows {
		cg += r.CGEE/r.BaseEE - 1
	}
	b.ReportMetric(cg/float64(len(rows))*100, "CGgain_%")
}

// --- Observability benches (DESIGN.md §9) ---

// BenchmarkObsCounter measures the metrics registry's hot path: the
// zero-label fast path is a single atomic CAS loop; the labelled path adds
// one map lookup under RLock.
func BenchmarkObsCounter(b *testing.B) {
	r := obs.NewRegistry()
	b.Run("no-labels", func(b *testing.B) {
		c := r.Counter("bench_plain_total", "bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("labelled", func(b *testing.B) {
		c := r.Counter("bench_labelled_total", "bench", "controller")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc("PowerLens")
		}
	})
}

// BenchmarkObsHistogram measures a labelled histogram observation (bucket
// scan + series lookup).
func BenchmarkObsHistogram(b *testing.B) {
	r := obs.NewRegistry()
	h := r.Histogram("bench_watts", "bench", []float64{1, 2, 4, 8, 16}, "controller")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%20), "PowerLens")
	}
}

// BenchmarkObsSpan measures one trace span emission (lock + append).
func BenchmarkObsSpan(b *testing.B) {
	o := obs.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Span("block", "bench", 0, 1, nil)
	}
}

// BenchmarkExecutorObserved measures the executor with the full
// observability layer attached, against BenchmarkExecutor's bare runs: the
// sub-bench delta is the per-task instrumentation cost (metrics, block and
// actuation spans, decision instants).
func BenchmarkExecutorObserved(b *testing.B) {
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	ctl := governor.NewStatic(8)
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.NewExecutor(p, ctl).RunTask(g, 1)
		}
	})
	b.Run("observed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := sim.NewExecutor(p, ctl)
			e.Obs = obs.New()
			e.RunTask(g, 1)
		}
	})
}

// BenchmarkAblationFusion compares PowerLens's end-to-end EE on eager vs
// operator-fused graphs (TensorRT-style conv+BN+activation folding): fusion
// removes the elementwise DRAM round-trips, raising arithmetic intensity
// and shrinking the gains available to frequency scaling of memory phases.
func BenchmarkAblationFusion(b *testing.B) {
	p := hw.TX2()
	eager := models.MustBuild("resnet152")
	fused := eager.FuseElementwise()
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"eager", eager}, {"fused", fused}} {
		b.Run(tc.name, func(b *testing.B) {
			var ee float64
			for i := 0; i < b.N; i++ {
				lvl, es := sim.OptimalSegmentLevel(p, tc.g, 0, len(tc.g.Layers)-1)
				ee = 1 / es[lvl]
			}
			b.ReportMetric(ee, "EE_img/J")
		})
	}
}
